//! The deterministic interpreter.
//!
//! Each logical thread (one per remote request) is a [`ThreadVm`]. The
//! replica engine steps a VM only when the scheduler allows it; the VM
//! runs internal instructions (state updates, branches, assignments)
//! silently and returns at the next *synchronisation-relevant* point with
//! an [`Action`] for the engine to arbitrate. Everything the VM does is a
//! pure function of (program, request arguments, object state), never of
//! wall-clock time — the paper's precondition for determinism.

use crate::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr};
use crate::compile::{CompiledObject, Instr};
use crate::ids::{CellId, FieldId, MethodIdx, MutexId, ServiceId, SyncId};
use crate::value::{RequestArgs, Value};
use std::sync::Arc;

/// The shared state of one object replica: replicated integer cells plus
/// the monitor-reference fields used as spontaneous lock parameters.
///
/// The divergence-detection hash is maintained *incrementally*: every
/// mutation goes through [`ObjectState::set_cell`] / [`set_field`], which
/// XOR out the old slot contribution and XOR in the new one, so
/// [`state_hash`] is O(1) regardless of how many cells the object has.
/// All fields are private to protect that invariant.
///
/// [`set_field`]: ObjectState::set_field
/// [`state_hash`]: ObjectState::state_hash
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectState {
    /// The monitor of the object itself (`this`).
    this_mutex: MutexId,
    cells: Vec<i64>,
    fields: Vec<MutexId>,
    /// Order-independent XOR-fold over `mix(slot, value)` of every slot.
    hash: u64,
}

/// Mixes one `(slot, value)` pair into a 64-bit contribution (SplitMix64
/// finalizer). The hash of a state is the XOR of all slot contributions —
/// XOR makes every mutation an O(1) out-then-in update, and the strong
/// per-slot mixing is what keeps the fold from collapsing (a plain XOR of
/// raw values would cancel identical cells).
#[inline]
fn mix(slot: u64, value: u64) -> u64 {
    let mut z =
        slot.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ value.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Disjoint slot spaces for the three state components.
#[inline]
fn cell_slot(i: usize) -> u64 {
    (i as u64) << 1
}
#[inline]
fn field_slot(i: usize) -> u64 {
    ((i as u64) << 1) | 1
}
const THIS_SLOT: u64 = u64::MAX;

impl ObjectState {
    pub fn new(this_mutex: MutexId, n_cells: u32, fields: Vec<MutexId>) -> Self {
        let mut s = ObjectState {
            this_mutex,
            cells: vec![0; n_cells as usize],
            fields,
            hash: 0,
        };
        s.hash = s.full_rehash();
        s
    }

    /// Builds the state shape an object implementation expects, with all
    /// fields pointing at `this`.
    pub fn for_object(obj: &CompiledObject, this_mutex: MutexId) -> Self {
        ObjectState::new(
            this_mutex,
            obj.n_cells,
            vec![this_mutex; obj.n_fields as usize],
        )
    }

    /// The monitor of the object itself (`this`).
    pub fn this_mutex(&self) -> MutexId {
        self.this_mutex
    }

    pub fn cell(&self, c: CellId) -> i64 {
        self.cells[c.index()]
    }

    pub fn set_cell(&mut self, c: CellId, v: i64) {
        let slot = &mut self.cells[c.index()];
        self.hash ^= mix(cell_slot(c.index()), *slot as u64) ^ mix(cell_slot(c.index()), v as u64);
        *slot = v;
    }

    pub fn field(&self, f: FieldId) -> MutexId {
        self.fields[f.index()]
    }

    pub fn set_field(&mut self, f: FieldId, m: MutexId) {
        let slot = &mut self.fields[f.index()];
        self.hash ^=
            mix(field_slot(f.index()), slot.0 as u64) ^ mix(field_slot(f.index()), m.0 as u64);
        *slot = m;
    }

    pub fn cells(&self) -> &[i64] {
        &self.cells
    }

    /// Hash over the full replicated state; replicas compare these to
    /// detect divergence. O(1): maintained incrementally under mutation.
    pub fn state_hash(&self) -> u64 {
        self.hash
    }

    /// Recomputes the hash from scratch. The incremental hash must always
    /// equal this — exposed so tests (and paranoid callers) can check the
    /// equivalence.
    pub fn full_rehash(&self) -> u64 {
        let mut h = mix(THIS_SLOT, self.this_mutex.0 as u64);
        for (i, &c) in self.cells.iter().enumerate() {
            h ^= mix(cell_slot(i), c as u64);
        }
        for (i, &f) in self.fields.iter().enumerate() {
            h ^= mix(field_slot(i), f.0 as u64);
        }
        h
    }
}

/// A synchronisation-relevant step the engine must arbitrate or perform.
/// Timing payloads are nanoseconds of *virtual* time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Occupy a CPU for the given duration.
    Compute { dur_ns: u64 },
    /// Request the monitor `mutex` for synchronized block `sync_id`.
    Lock { sync_id: SyncId, mutex: MutexId },
    /// Release the monitor taken at `sync_id`.
    Unlock { sync_id: SyncId, mutex: MutexId },
    /// `mutex.wait()` — caller must hold `mutex`.
    Wait { mutex: MutexId },
    /// `mutex.notify()` / `notifyAll()` — caller must hold `mutex`.
    Notify { mutex: MutexId, all: bool },
    /// Nested remote invocation with the given simulated round-trip.
    Nested { service: ServiceId, dur_ns: u64 },
    /// Announcement injected by the analysis: this thread will lock
    /// `mutex` at `sync_id` (paper `scheduler.lockInfo`).
    LockInfo { sync_id: SyncId, mutex: MutexId },
    /// Announcement injected by the analysis: `sync_id` is bypassed on the
    /// taken path (paper `scheduler.ignore`).
    Ignore { sync_id: SyncId },
}

/// Result of stepping a VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The VM paused at an action; resume by calling `step` again after
    /// the engine has performed/granted it.
    Action(Action),
    /// The root method returned; the thread is done.
    Finished,
}

/// Per-frame bookkeeping: where this frame's arguments, locals, loop
/// counters and taken monitors begin in the VM-wide arenas. The frame's
/// segment of each arena runs from its base to either the next frame's
/// base or the arena's end (frames form a stack, so the executing frame's
/// segments are always the arena tails).
#[derive(Clone, Copy)]
struct FrameMeta {
    method: MethodIdx,
    pc: usize,
    args_base: usize,
    locals_base: usize,
    loops_base: usize,
    /// Monitors taken by `Lock` in this frame live at
    /// `sync_stack[sync_base..]`, with their sync ids, in acquisition
    /// order (so `Unlock` releases what was actually locked even if the
    /// parameter expression was reassigned in between).
    sync_base: usize,
}

/// The interpreter state of one logical thread.
///
/// Frames are flattened: instead of every `Frame` owning four heap
/// vectors, all frames share four VM-wide arenas indexed by per-frame
/// base offsets. A call appends to the arena tails, a return truncates
/// back to the frame's bases — so after warm-up (and always, on a VM
/// recycled through [`VmPool`]) pushing and popping frames allocates
/// nothing.
pub struct ThreadVm {
    program: Arc<CompiledObject>,
    frames: Vec<FrameMeta>,
    /// Argument arena: the root request's args followed by each nested
    /// call's evaluated arguments.
    args: Vec<Value>,
    locals: Vec<Value>,
    loop_slots: Vec<u32>,
    sync_stack: Vec<(SyncId, MutexId)>,
    /// Count of `step` calls, exposed for tests and runaway detection.
    steps: u64,
}

/// Hard bound on internal (non-action) instructions executed per `step`
/// call. A purely internal infinite loop is a programme bug; failing fast
/// beats hanging the simulation.
const INTERNAL_STEP_LIMIT: usize = 1_000_000;

impl ThreadVm {
    /// Creates a VM poised at the first instruction of `method`.
    pub fn new(program: Arc<CompiledObject>, method: MethodIdx, args: RequestArgs) -> Self {
        let mut vm = ThreadVm {
            program,
            frames: Vec::new(),
            args: Vec::new(),
            locals: Vec::new(),
            loop_slots: Vec::new(),
            sync_stack: Vec::new(),
            steps: 0,
        };
        vm.start(method, &args);
        vm
    }

    /// Re-arms this VM for a new request, recycling every buffer the
    /// previous request grew. This is what makes [`VmPool`] reuse
    /// allocation-free in steady state.
    pub fn reset(&mut self, program: Arc<CompiledObject>, method: MethodIdx, args: &RequestArgs) {
        self.program = program;
        self.frames.clear();
        self.args.clear();
        self.locals.clear();
        self.loop_slots.clear();
        self.sync_stack.clear();
        self.steps = 0;
        self.start(method, args);
    }

    fn start(&mut self, method: MethodIdx, args: &RequestArgs) {
        let m = &self.program.methods[method.index()];
        assert_eq!(
            args.len(),
            m.arity,
            "method {} expects {} args, got {}",
            m.name,
            m.arity,
            args.len()
        );
        self.args.extend_from_slice(args.values());
        self.push_frame(method, 0);
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Monitors currently held by this thread across all frames, in
    /// acquisition order (outermost first). Reentrant acquisitions appear
    /// once per `Lock`.
    pub fn held_monitors(&self) -> Vec<MutexId> {
        self.sync_stack.iter().map(|&(_, m)| m).collect()
    }

    /// Advances the thread to its next synchronisation-relevant action.
    /// Internal instructions mutate `state` immediately (the engine only
    /// steps one VM at a time, so these writes are race-free by
    /// construction — the simulation analogue of "all access is properly
    /// synchronised").
    pub fn step(&mut self, state: &mut ObjectState) -> StepOutcome {
        self.steps += 1;
        for _ in 0..INTERNAL_STEP_LIMIT {
            let Some(&FrameMeta {
                method,
                pc,
                args_base,
                locals_base,
                loops_base,
                sync_base,
            }) = self.frames.last()
            else {
                return StepOutcome::Finished;
            };
            let fi = self.frames.len() - 1;
            // Borrows only the `program` field; the arms below mutate the
            // (disjoint) arena fields, so no handle clone is needed.
            let code = &self.program.methods[method.index()].code;
            debug_assert!(pc < code.len(), "pc ran off method end");
            let instr = &code[pc];
            // The executing frame's arena segments are the arena tails.
            let fargs = &self.args[args_base..];
            let flocals = &self.locals[locals_base..];
            match instr {
                Instr::Compute(d) => {
                    let dur_ns = eval_dur(d, fargs);
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Compute { dur_ns });
                }
                Instr::Lock { sync_id, param } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let sync_id = *sync_id;
                    self.sync_stack.push((sync_id, mutex));
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Lock { sync_id, mutex });
                }
                Instr::Unlock { sync_id } => {
                    debug_assert!(self.sync_stack.len() > sync_base, "unlock crosses frame");
                    let (sid, mutex) = self.sync_stack.pop().expect("unlock without matching lock");
                    debug_assert_eq!(sid, *sync_id, "unbalanced sync stack");
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Unlock {
                        sync_id: sid,
                        mutex,
                    });
                }
                Instr::Wait(param) => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Wait { mutex });
                }
                Instr::Notify { param, all } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let all = *all;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Notify { mutex, all });
                }
                Instr::Nested { service, dur } => {
                    let dur_ns = eval_dur(dur, fargs);
                    let service = *service;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Nested { service, dur_ns });
                }
                Instr::LockInfo { sync_id, param } => {
                    let mutex = eval_mutex(param, fargs, flocals, state);
                    let sync_id = *sync_id;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::LockInfo { sync_id, mutex });
                }
                Instr::IgnoreSync { sync_id } => {
                    let sync_id = *sync_id;
                    self.frames[fi].pc = pc + 1;
                    return StepOutcome::Action(Action::Ignore { sync_id });
                }
                // ---- internal instructions: no scheduler involvement ----
                Instr::Update { cell, delta } => {
                    let d = eval_int(delta, fargs, state);
                    state.set_cell(*cell, state.cell(*cell).wrapping_add(d));
                    self.frames[fi].pc = pc + 1;
                }
                Instr::UpdateIndexed {
                    base,
                    len,
                    index_arg,
                    delta,
                } => {
                    let idx = arg_at(fargs, *index_arg).as_int().rem_euclid(*len as i64) as u32;
                    let cell = CellId::new(base + idx);
                    let d = eval_int(delta, fargs, state);
                    state.set_cell(cell, state.cell(cell).wrapping_add(d));
                    self.frames[fi].pc = pc + 1;
                }
                Instr::SetCell { cell, value } => {
                    let v = eval_int(value, fargs, state);
                    state.set_cell(*cell, v);
                    self.frames[fi].pc = pc + 1;
                }
                Instr::Assign { local, expr } => {
                    let m = eval_mutex(expr, fargs, flocals, state);
                    self.locals[locals_base + local.index()] = Value::Mutex(m);
                    self.frames[fi].pc = pc + 1;
                }
                Instr::BranchIfFalse { cond, target } => {
                    self.frames[fi].pc = if eval_cond(cond, fargs, state) {
                        pc + 1
                    } else {
                        *target
                    };
                }
                Instr::Jump(target) => self.frames[fi].pc = *target,
                Instr::LoopInit { slot, count } => {
                    let n = match count {
                        CountExpr::Lit(n) => *n,
                        CountExpr::Arg(i) => arg_at(fargs, *i).as_int().max(0) as u32,
                    };
                    self.loop_slots[loops_base + *slot as usize] = n;
                    self.frames[fi].pc = pc + 1;
                }
                Instr::LoopTest { slot, exit } => {
                    let c = &mut self.loop_slots[loops_base + *slot as usize];
                    if *c == 0 {
                        self.frames[fi].pc = *exit;
                    } else {
                        *c -= 1;
                        self.frames[fi].pc = pc + 1;
                    }
                }
                Instr::Call { method, args } => {
                    let callee = *method;
                    let callee_base = eval_call_args(
                        &mut self.args,
                        &self.locals,
                        args,
                        args_base,
                        locals_base,
                        state,
                    );
                    self.frames[fi].pc = pc + 1;
                    self.push_frame(callee, callee_base);
                }
                Instr::CallVirtual {
                    candidates,
                    selector,
                    args,
                    ..
                } => {
                    let sel = eval_int(selector, fargs, state);
                    let idx = (sel.rem_euclid(candidates.len() as i64)) as usize;
                    let target = candidates[idx];
                    let callee_base = eval_call_args(
                        &mut self.args,
                        &self.locals,
                        args,
                        args_base,
                        locals_base,
                        state,
                    );
                    self.frames[fi].pc = pc + 1;
                    self.push_frame(target, callee_base);
                }
                Instr::Ret => {
                    let f = self.frames.pop().expect("ret without frame");
                    assert!(
                        self.sync_stack.len() == f.sync_base,
                        "returning while holding monitors {:?}",
                        &self.sync_stack[f.sync_base..]
                    );
                    self.args.truncate(f.args_base);
                    self.locals.truncate(f.locals_base);
                    self.loop_slots.truncate(f.loops_base);
                    if self.frames.is_empty() {
                        return StepOutcome::Finished;
                    }
                }
            }
        }
        panic!(
            "thread exceeded {INTERNAL_STEP_LIMIT} internal steps: non-terminating internal loop"
        );
    }

    /// Pushes a frame whose arguments already occupy `args[args_base..]`.
    fn push_frame(&mut self, method: MethodIdx, args_base: usize) {
        let m = &self.program.methods[method.index()];
        assert_eq!(
            self.args.len() - args_base,
            m.arity,
            "call arity mismatch for {}",
            m.name
        );
        let (n_locals, n_loops) = (m.n_locals as usize, m.n_loop_slots as usize);
        let locals_base = self.locals.len();
        let loops_base = self.loop_slots.len();
        let sync_base = self.sync_stack.len();
        self.locals.resize(locals_base + n_locals, Value::Int(0));
        self.loop_slots.resize(loops_base + n_loops, 0);
        self.frames.push(FrameMeta {
            method,
            pc: 0,
            args_base,
            locals_base,
            loops_base,
            sync_base,
        });
    }
}

/// A reset-on-reuse free list of [`ThreadVm`]s. A replica acquires a VM
/// per admitted request and releases it when the thread finishes; after
/// the pool warms up to the peak number of concurrently live threads,
/// admission stops allocating entirely. The `allocs`/`reuses` counters
/// make that claim checkable from the outside.
#[derive(Default)]
pub struct VmPool {
    free: Vec<ThreadVm>,
    allocs: u64,
    reuses: u64,
}

impl VmPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a VM poised at the first instruction of `method`,
    /// recycling a released VM when one is idle.
    pub fn acquire(
        &mut self,
        program: Arc<CompiledObject>,
        method: MethodIdx,
        args: &RequestArgs,
    ) -> ThreadVm {
        match self.free.pop() {
            Some(mut vm) => {
                self.reuses += 1;
                vm.reset(program, method, args);
                vm
            }
            None => {
                self.allocs += 1;
                ThreadVm::new(program, method, args.clone())
            }
        }
    }

    /// Returns a finished VM's buffers to the pool.
    pub fn release(&mut self, vm: ThreadVm) {
        self.free.push(vm);
    }

    /// VMs constructed from scratch (pool misses).
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Acquisitions served by recycling a released VM.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// VMs currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// Fetches argument `i` from a frame's segment of the args arena. Panics
/// on out-of-range: the analysis guarantees arity, so a miss is a harness
/// bug worth failing loudly on.
#[inline]
fn arg_at(args: &[Value], i: usize) -> Value {
    *args
        .get(i)
        .unwrap_or_else(|| panic!("request argument {i} missing (have {})", args.len()))
}

/// Evaluates a call's argument expressions into the tail of the args
/// arena (one at a time — the caller's own segment stays readable while
/// the callee's grows behind it) and returns the callee's `args_base`.
/// A free function over the two arenas so the caller's borrow of the
/// program (the instruction being executed) stays live across the call.
fn eval_call_args(
    args: &mut Vec<Value>,
    locals: &[Value],
    exprs: &[ArgExpr],
    args_base: usize,
    locals_base: usize,
    state: &ObjectState,
) -> usize {
    let callee_base = args.len();
    for a in exprs {
        let v = match a {
            ArgExpr::Const(v) => *v,
            ArgExpr::CallerArg(i) => arg_at(&args[args_base..callee_base], *i),
            ArgExpr::Local(l) => locals[locals_base + l.index()],
            ArgExpr::Field(f) => Value::Mutex(state.field(*f)),
        };
        args.push(v);
    }
    callee_base
}

fn eval_dur(d: &DurExpr, args: &[Value]) -> u64 {
    match d {
        DurExpr::Nanos(n) => *n,
        DurExpr::Arg(i) => arg_at(args, *i).as_dur_nanos(),
    }
}

fn eval_int(e: &IntExpr, args: &[Value], state: &ObjectState) -> i64 {
    match e {
        IntExpr::Lit(v) => *v,
        IntExpr::Arg(i) => arg_at(args, *i).as_int(),
        IntExpr::Cell(c) => state.cell(*c),
    }
}

fn eval_mutex(e: &MutexExpr, args: &[Value], locals: &[Value], state: &ObjectState) -> MutexId {
    match e {
        MutexExpr::This => state.this_mutex,
        MutexExpr::Konst(m) => *m,
        MutexExpr::Arg(i) => arg_at(args, *i).as_mutex(),
        MutexExpr::Local(l) => locals[l.index()].as_mutex(),
        MutexExpr::Field(f) => state.field(*f),
        MutexExpr::Pool {
            base,
            len,
            index_arg,
        } => {
            let idx = arg_at(args, *index_arg).as_int().rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::PoolByCell { base, len, cell } => {
            let idx = state.cell(*cell).rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::CallResult { resolves_to, .. } => state.field(*resolves_to),
    }
}

fn eval_cond(c: &CondExpr, args: &[Value], state: &ObjectState) -> bool {
    match c {
        CondExpr::Konst(b) => *b,
        CondExpr::ArgFlag(i) => arg_at(args, *i).as_bool(),
        CondExpr::ArgIntLt(i, k) => arg_at(args, *i).as_int() < *k,
        CondExpr::CellEq(cell, k) => state.cell(*cell) == *k,
        CondExpr::CellLt(cell, k) => state.cell(*cell) < *k,
        CondExpr::CellGe(cell, k) => state.cell(*cell) >= *k,
        CondExpr::ParamEqField(i, f) => arg_at(args, *i).as_mutex() == state.field(*f),
        CondExpr::Not(inner) => !eval_cond(inner, args, state),
    }
}

/// Runs a VM to completion with every action auto-granted, returning the
/// emitted action trace. Only meaningful for single-threaded execution —
/// used by tests, the analysis oracle, and the transformation-equivalence
/// property checks.
pub fn run_to_completion(vm: &mut ThreadVm, state: &mut ObjectState) -> Vec<Action> {
    let mut trace = Vec::new();
    loop {
        match vm.step(state) {
            StepOutcome::Action(a) => trace.push(a),
            StepOutcome::Finished => return trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Method, ObjectImpl, Stmt};
    use crate::compile::compile;
    use crate::ids::LocalId;

    fn make(body: Vec<Stmt>, arity: usize, n_locals: u32) -> Arc<CompiledObject> {
        compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 4,
            n_fields: 2,
            methods: vec![Method {
                name: "m".into(),
                arity,
                n_locals,
                public: true,
                is_final: true,
                body,
            }],
        })
    }

    fn run(obj: Arc<CompiledObject>, args: Vec<Value>) -> (Vec<Action>, ObjectState) {
        let mut state = ObjectState::for_object(&obj, MutexId::new(1000));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::new(args));
        let trace = run_to_completion(&mut vm, &mut state);
        (trace, state)
    }

    #[test]
    fn straight_line_trace() {
        let obj = make(
            vec![
                Stmt::Compute(DurExpr::millis(2)),
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::This,
                    body: vec![Stmt::Update {
                        cell: CellId::new(0),
                        delta: IntExpr::Lit(5),
                    }],
                },
            ],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert_eq!(
            trace,
            vec![
                Action::Compute { dur_ns: 2_000_000 },
                Action::Lock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(1000)
                },
                Action::Unlock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(1000)
                },
            ]
        );
        assert_eq!(state.cell(CellId::new(0)), 5);
    }

    #[test]
    fn branch_on_client_flag() {
        let body = vec![Stmt::If {
            cond: CondExpr::ArgFlag(0),
            then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
            else_branch: vec![Stmt::Nested {
                service: ServiceId::new(0),
                dur: DurExpr::millis(12),
            }],
        }];
        let obj = make(body, 1, 0);
        let (t_true, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(t_true, vec![Action::Compute { dur_ns: 1_000_000 }]);
        let (t_false, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(
            t_false,
            vec![Action::Nested {
                service: ServiceId::new(0),
                dur_ns: 12_000_000
            }]
        );
    }

    #[test]
    fn for_loop_repeats_body() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Lit(3),
                body: vec![Stmt::Update {
                    cell: CellId::new(1),
                    delta: IntExpr::Lit(2),
                }],
            }],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert!(trace.is_empty()); // pure internal work
        assert_eq!(state.cell(CellId::new(1)), 6);
    }

    #[test]
    fn for_loop_count_from_arg_and_zero() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Arg(0),
                body: vec![Stmt::Compute(DurExpr::millis(1))],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(2)]);
        assert_eq!(trace.len(), 2);
        let (trace, _) = run(obj.clone(), vec![Value::Int(0)]);
        assert!(trace.is_empty());
        // Negative counts clamp to zero.
        let (trace, _) = run(obj, vec![Value::Int(-5)]);
        assert!(trace.is_empty());
    }

    #[test]
    fn pool_mutex_selected_by_client_index() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Pool {
                    base: 100,
                    len: 10,
                    index_arg: 0,
                },
                body: vec![],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(7)]);
        assert_eq!(
            trace[0],
            Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(107)
            }
        );
        // Index wraps modulo pool size.
        let (trace, _) = run(obj, vec![Value::Int(13)]);
        assert_eq!(
            trace[0],
            Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(103)
            }
        );
    }

    #[test]
    fn local_assignment_tracks_lock_object() {
        // local = args[0]; sync(local) { ... } — unlock releases what was
        // locked even though nothing reassigns here.
        let obj = make(
            vec![
                Stmt::Assign {
                    local: LocalId::new(0),
                    expr: MutexExpr::Arg(0),
                },
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Local(LocalId::new(0)),
                    body: vec![Stmt::Assign {
                        local: LocalId::new(0),
                        expr: MutexExpr::This,
                    }],
                },
            ],
            1,
            1,
        );
        let (trace, _) = run(obj, vec![Value::Mutex(MutexId::new(55))]);
        assert_eq!(
            trace,
            vec![
                Action::Lock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(55)
                },
                // Reassignment inside the block must not change what is unlocked.
                Action::Unlock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(55)
                },
            ]
        );
    }

    #[test]
    fn early_return_unlocks_monitors() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![
                    Stmt::If {
                        cond: CondExpr::ArgFlag(0),
                        then_branch: vec![Stmt::Return],
                        else_branch: vec![],
                    },
                    Stmt::Compute(DurExpr::millis(1)),
                ],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(trace.len(), 2); // lock + unlock, no compute
        assert!(matches!(trace[1], Action::Unlock { .. }));
        let (trace, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(trace.len(), 3); // lock + compute + unlock
    }

    #[test]
    fn local_call_pushes_frame() {
        let callee = Method {
            name: "callee".into(),
            arity: 1,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                param: MutexExpr::Arg(0),
                body: vec![],
            }],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Call {
                method: MethodIdx::new(1),
                args: vec![ArgExpr::CallerArg(0)],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        });
        let mut state = ObjectState::for_object(&obj, MutexId::new(1));
        let mut vm = ThreadVm::new(
            obj,
            MethodIdx::new(0),
            RequestArgs::new(vec![Value::Mutex(MutexId::new(42))]),
        );
        let trace = run_to_completion(&mut vm, &mut state);
        assert_eq!(
            trace,
            vec![
                Action::Lock {
                    sync_id: SyncId::new(1),
                    mutex: MutexId::new(42)
                },
                Action::Unlock {
                    sync_id: SyncId::new(1),
                    mutex: MutexId::new(42)
                },
            ]
        );
    }

    #[test]
    fn virtual_call_dispatches_by_selector() {
        let mk_leaf = |name: &str, ms: u64| Method {
            name: name.into(),
            arity: 0,
            n_locals: 0,
            public: false,
            is_final: false,
            body: vec![Stmt::Compute(DurExpr::millis(ms))],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::VirtualCall {
                site: crate::ids::CallSiteId::new(0),
                candidates: vec![MethodIdx::new(1), MethodIdx::new(2)],
                selector: IntExpr::Arg(0),
                args: vec![],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, mk_leaf("a", 1), mk_leaf("b", 2)],
        });
        let run_sel = |sel: i64| {
            let mut state = ObjectState::for_object(&obj, MutexId::new(1));
            let mut vm = ThreadVm::new(
                obj.clone(),
                MethodIdx::new(0),
                RequestArgs::new(vec![Value::Int(sel)]),
            );
            run_to_completion(&mut vm, &mut state)
        };
        assert_eq!(run_sel(0), vec![Action::Compute { dur_ns: 1_000_000 }]);
        assert_eq!(run_sel(1), vec![Action::Compute { dur_ns: 2_000_000 }]);
        assert_eq!(run_sel(2), vec![Action::Compute { dur_ns: 1_000_000 }]);
        // Negative selectors use euclidean remainder (stay in range).
        assert_eq!(run_sel(-1), vec![Action::Compute { dur_ns: 2_000_000 }]);
    }

    #[test]
    fn wait_loop_reevaluates_condition() {
        // while (cell0 < 1) wait(this); — after the engine sets the cell
        // and resumes, the loop must exit.
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![Stmt::While {
                    cond: CondExpr::CellLt(CellId::new(0), 1),
                    body: vec![Stmt::Wait(MutexExpr::This)],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(9));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Lock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(9)
            })
        );
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Wait {
                mutex: MutexId::new(9)
            })
        );
        // Engine: another thread sets the cell, notifies, VM resumes.
        state.set_cell(CellId::new(0), 1);
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Unlock {
                sync_id: SyncId::new(0),
                mutex: MutexId::new(9)
            })
        );
        assert_eq!(vm.step(&mut state), StepOutcome::Finished);
    }

    #[test]
    fn held_monitors_reported_in_order() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(1)),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(1),
                    param: MutexExpr::Konst(MutexId::new(2)),
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state); // lock m1
        vm.step(&mut state); // lock m2
        assert_eq!(vm.held_monitors(), vec![MutexId::new(1), MutexId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "non-terminating internal loop")]
    fn internal_infinite_loop_detected() {
        let obj = make(
            vec![Stmt::While {
                cond: CondExpr::Konst(true),
                body: vec![],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state);
    }

    #[test]
    fn state_hash_changes_with_state() {
        let obj = make(vec![], 0, 0);
        let a = ObjectState::for_object(&obj, MutexId::new(1));
        let mut b = ObjectState::for_object(&obj, MutexId::new(1));
        assert_eq!(a.state_hash(), b.state_hash());
        b.set_cell(CellId::new(0), 1);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    #[should_panic(expected = "expects 1 args")]
    fn arity_mismatch_panics() {
        let obj = make(vec![], 1, 0);
        ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
    }

    /// Nested-sync method used by the pool-reuse tests: lock(m1) { lock(m2)
    /// { compute } }.
    fn nested_sync_obj() -> Arc<CompiledObject> {
        make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(1)),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(1),
                    param: MutexExpr::Konst(MutexId::new(2)),
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            }],
            0,
            0,
        )
    }

    #[test]
    fn pool_reuse_reports_reentrant_monitors_across_nested_frames() {
        // A recycled VM must report held monitors exactly like a fresh one,
        // including reentrant/nested acquisitions spread across call frames.
        let callee = Method {
            name: "callee".into(),
            arity: 0,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                // Reentrant: the caller already holds this monitor.
                param: MutexExpr::Konst(MutexId::new(7)),
                body: vec![Stmt::Compute(DurExpr::millis(1))],
            }],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(7)),
                body: vec![Stmt::Call {
                    method: MethodIdx::new(1),
                    args: vec![],
                }],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        });
        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        // First request: run to completion, release the VM.
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        run_to_completion(&mut vm, &mut state);
        assert!(vm.held_monitors().is_empty());
        pool.release(vm);
        // Second request reuses the buffers; pause it mid-nesting.
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        assert_eq!(pool.reuses(), 1);
        assert_eq!(pool.allocs(), 1);
        vm.step(&mut state); // lock m7 in caller
        vm.step(&mut state); // lock m7 again in callee (reentrant, new frame)
        assert_eq!(vm.held_monitors(), vec![MutexId::new(7), MutexId::new(7)]);
        // Finish cleanly: unlock, unlock, compute, return.
        let trace = run_to_completion(&mut vm, &mut state);
        assert!(vm.held_monitors().is_empty());
        assert!(
            trace
                .iter()
                .filter(|a| matches!(a, Action::Unlock { .. }))
                .count()
                == 2
        );
    }

    #[test]
    fn pool_reuse_matches_fresh_vm_traces() {
        let obj = nested_sync_obj();
        let mut fresh_state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut fresh = ThreadVm::new(obj.clone(), MethodIdx::new(0), RequestArgs::empty());
        let expected = run_to_completion(&mut fresh, &mut fresh_state);

        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        for round in 0..3 {
            let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
            let trace = run_to_completion(&mut vm, &mut state);
            assert_eq!(trace, expected, "round {round} diverged after reuse");
            pool.release(vm);
        }
        assert_eq!(pool.allocs(), 1);
        assert_eq!(pool.reuses(), 2);
    }

    #[test]
    #[should_panic(expected = "non-terminating internal loop")]
    fn internal_step_limit_still_fires_after_reuse() {
        // One terminating method and one internal infinite loop in the same
        // object: the recycled VM must still trip the runaway guard.
        let looper = Method {
            name: "looper".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::While {
                cond: CondExpr::Konst(true),
                body: vec![],
            }],
        };
        let fine = Method {
            name: "fine".into(),
            arity: 0,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Compute(DurExpr::millis(1))],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![fine, looper],
        });
        let mut pool = VmPool::new();
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = pool.acquire(obj.clone(), MethodIdx::new(0), &RequestArgs::empty());
        run_to_completion(&mut vm, &mut state);
        pool.release(vm);
        let mut vm = pool.acquire(obj, MethodIdx::new(1), &RequestArgs::empty());
        vm.step(&mut state);
    }

    #[test]
    fn incremental_hash_matches_full_rehash_under_random_mutation() {
        // Tiny SplitMix64 clone (dmt-lang has no deps) driving randomized
        // set_cell/set_field sequences; the incremental hash must track the
        // from-scratch fold exactly at every step.
        let mut z: u64 = 0x9E37_79B9_0000_0001;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let mut s = ObjectState::new(MutexId::new(42), 16, vec![MutexId::new(42); 8]);
        assert_eq!(s.state_hash(), s.full_rehash());
        for _ in 0..2_000 {
            if next() % 3 == 0 {
                let f = (next() % 8) as usize;
                s.set_field(FieldId::new(f as u32), MutexId::new((next() % 100) as u32));
            } else {
                let c = (next() % 16) as usize;
                s.set_cell(CellId::new(c as u32), next() as i64);
            }
            assert_eq!(s.state_hash(), s.full_rehash(), "incremental hash drifted");
        }
        // Writing a slot back to its current value must be a no-op.
        let before = s.state_hash();
        let v = s.cell(CellId::new(3));
        s.set_cell(CellId::new(3), v);
        assert_eq!(s.state_hash(), before);
    }

    #[test]
    fn equal_states_hash_equal_after_different_histories() {
        // The fold is order-independent: two states reaching the same
        // contents by different mutation orders must agree.
        let mut a = ObjectState::new(MutexId::new(1), 4, vec![MutexId::new(1); 2]);
        let mut b = a.clone();
        a.set_cell(CellId::new(0), 10);
        a.set_cell(CellId::new(1), 20);
        a.set_field(FieldId::new(0), MutexId::new(9));
        b.set_field(FieldId::new(0), MutexId::new(9));
        b.set_cell(CellId::new(1), 99);
        b.set_cell(CellId::new(1), 20);
        b.set_cell(CellId::new(0), 10);
        assert_eq!(a, b);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_eq!(a.state_hash(), a.full_rehash());
    }
}
