//! The deterministic interpreter.
//!
//! Each logical thread (one per remote request) is a [`ThreadVm`]. The
//! replica engine steps a VM only when the scheduler allows it; the VM
//! runs internal instructions (state updates, branches, assignments)
//! silently and returns at the next *synchronisation-relevant* point with
//! an [`Action`] for the engine to arbitrate. Everything the VM does is a
//! pure function of (program, request arguments, object state), never of
//! wall-clock time — the paper's precondition for determinism.

use crate::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr};
use crate::compile::{CompiledObject, Instr};
use crate::ids::{CellId, FieldId, MethodIdx, MutexId, ServiceId, SyncId};
use crate::value::{RequestArgs, Value};
use std::sync::Arc;

/// The shared state of one object replica: replicated integer cells plus
/// the monitor-reference fields used as spontaneous lock parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct ObjectState {
    /// The monitor of the object itself (`this`).
    pub this_mutex: MutexId,
    cells: Vec<i64>,
    fields: Vec<MutexId>,
}

impl ObjectState {
    pub fn new(this_mutex: MutexId, n_cells: u32, fields: Vec<MutexId>) -> Self {
        ObjectState { this_mutex, cells: vec![0; n_cells as usize], fields }
    }

    /// Builds the state shape an object implementation expects, with all
    /// fields pointing at `this`.
    pub fn for_object(obj: &CompiledObject, this_mutex: MutexId) -> Self {
        ObjectState::new(this_mutex, obj.n_cells, vec![this_mutex; obj.n_fields as usize])
    }

    pub fn cell(&self, c: CellId) -> i64 {
        self.cells[c.index()]
    }

    pub fn set_cell(&mut self, c: CellId, v: i64) {
        self.cells[c.index()] = v;
    }

    pub fn field(&self, f: FieldId) -> MutexId {
        self.fields[f.index()]
    }

    pub fn set_field(&mut self, f: FieldId, m: MutexId) {
        self.fields[f.index()] = m;
    }

    pub fn cells(&self) -> &[i64] {
        &self.cells
    }

    /// FNV-1a hash over the full replicated state; replicas compare these
    /// to detect divergence.
    pub fn state_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        eat(self.this_mutex.0 as u64);
        for &c in &self.cells {
            eat(c as u64);
        }
        for &f in &self.fields {
            eat(f.0 as u64);
        }
        h
    }
}

/// A synchronisation-relevant step the engine must arbitrate or perform.
/// Timing payloads are nanoseconds of *virtual* time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Occupy a CPU for the given duration.
    Compute { dur_ns: u64 },
    /// Request the monitor `mutex` for synchronized block `sync_id`.
    Lock { sync_id: SyncId, mutex: MutexId },
    /// Release the monitor taken at `sync_id`.
    Unlock { sync_id: SyncId, mutex: MutexId },
    /// `mutex.wait()` — caller must hold `mutex`.
    Wait { mutex: MutexId },
    /// `mutex.notify()` / `notifyAll()` — caller must hold `mutex`.
    Notify { mutex: MutexId, all: bool },
    /// Nested remote invocation with the given simulated round-trip.
    Nested { service: ServiceId, dur_ns: u64 },
    /// Announcement injected by the analysis: this thread will lock
    /// `mutex` at `sync_id` (paper `scheduler.lockInfo`).
    LockInfo { sync_id: SyncId, mutex: MutexId },
    /// Announcement injected by the analysis: `sync_id` is bypassed on the
    /// taken path (paper `scheduler.ignore`).
    Ignore { sync_id: SyncId },
}

/// Result of stepping a VM.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The VM paused at an action; resume by calling `step` again after
    /// the engine has performed/granted it.
    Action(Action),
    /// The root method returned; the thread is done.
    Finished,
}

struct Frame {
    method: MethodIdx,
    pc: usize,
    args: RequestArgs,
    locals: Vec<Value>,
    loop_slots: Vec<u32>,
    /// Monitors taken by `Lock` in this frame, with their syncids, in
    /// acquisition order (so `Unlock` releases what was actually locked
    /// even if the parameter expression was reassigned in between).
    sync_stack: Vec<(SyncId, MutexId)>,
}

/// The interpreter state of one logical thread.
pub struct ThreadVm {
    program: Arc<CompiledObject>,
    frames: Vec<Frame>,
    /// Count of `step` calls, exposed for tests and runaway detection.
    steps: u64,
}

/// Hard bound on internal (non-action) instructions executed per `step`
/// call. A purely internal infinite loop is a programme bug; failing fast
/// beats hanging the simulation.
const INTERNAL_STEP_LIMIT: usize = 1_000_000;

impl ThreadVm {
    /// Creates a VM poised at the first instruction of `method`.
    pub fn new(program: Arc<CompiledObject>, method: MethodIdx, args: RequestArgs) -> Self {
        let m = &program.methods[method.index()];
        assert_eq!(
            args.len(),
            m.arity,
            "method {} expects {} args, got {}",
            m.name,
            m.arity,
            args.len()
        );
        let frame = Frame {
            method,
            pc: 0,
            locals: vec![Value::Int(0); m.n_locals as usize],
            loop_slots: vec![0; m.n_loop_slots as usize],
            args,
            sync_stack: Vec::new(),
        };
        ThreadVm { program, frames: vec![frame], steps: 0 }
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Monitors currently held by this thread across all frames, in
    /// acquisition order (outermost first). Reentrant acquisitions appear
    /// once per `Lock`.
    pub fn held_monitors(&self) -> Vec<MutexId> {
        self.frames
            .iter()
            .flat_map(|f| f.sync_stack.iter().map(|&(_, m)| m))
            .collect()
    }

    /// Advances the thread to its next synchronisation-relevant action.
    /// Internal instructions mutate `state` immediately (the engine only
    /// steps one VM at a time, so these writes are race-free by
    /// construction — the simulation analogue of "all access is properly
    /// synchronised").
    pub fn step(&mut self, state: &mut ObjectState) -> StepOutcome {
        self.steps += 1;
        for _ in 0..INTERNAL_STEP_LIMIT {
            let Some(frame) = self.frames.last_mut() else {
                return StepOutcome::Finished;
            };
            let code = &self.program.methods[frame.method.index()].code;
            debug_assert!(frame.pc < code.len(), "pc ran off method end");
            let instr = &code[frame.pc];
            match instr {
                Instr::Compute(d) => {
                    let dur_ns = eval_dur(d, &frame.args);
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Compute { dur_ns });
                }
                Instr::Lock { sync_id, param } => {
                    let mutex = eval_mutex(param, frame, state);
                    frame.sync_stack.push((*sync_id, mutex));
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Lock { sync_id: *sync_id, mutex });
                }
                Instr::Unlock { sync_id } => {
                    let (sid, mutex) = frame
                        .sync_stack
                        .pop()
                        .expect("unlock without matching lock");
                    debug_assert_eq!(sid, *sync_id, "unbalanced sync stack");
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Unlock { sync_id: sid, mutex });
                }
                Instr::Wait(param) => {
                    let mutex = eval_mutex(param, frame, state);
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Wait { mutex });
                }
                Instr::Notify { param, all } => {
                    let mutex = eval_mutex(param, frame, state);
                    let all = *all;
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Notify { mutex, all });
                }
                Instr::Nested { service, dur } => {
                    let dur_ns = eval_dur(dur, &frame.args);
                    let service = *service;
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Nested { service, dur_ns });
                }
                Instr::LockInfo { sync_id, param } => {
                    let mutex = eval_mutex(param, frame, state);
                    let sync_id = *sync_id;
                    frame.pc += 1;
                    return StepOutcome::Action(Action::LockInfo { sync_id, mutex });
                }
                Instr::IgnoreSync { sync_id } => {
                    let sync_id = *sync_id;
                    frame.pc += 1;
                    return StepOutcome::Action(Action::Ignore { sync_id });
                }
                // ---- internal instructions: no scheduler involvement ----
                Instr::Update { cell, delta } => {
                    let d = eval_int(delta, &frame.args, state);
                    state.set_cell(*cell, state.cell(*cell).wrapping_add(d));
                    frame.pc += 1;
                }
                Instr::UpdateIndexed { base, len, index_arg, delta } => {
                    let idx = frame.args.get(*index_arg).as_int().rem_euclid(*len as i64) as u32;
                    let cell = CellId::new(base + idx);
                    let d = eval_int(delta, &frame.args, state);
                    state.set_cell(cell, state.cell(cell).wrapping_add(d));
                    frame.pc += 1;
                }
                Instr::SetCell { cell, value } => {
                    let v = eval_int(value, &frame.args, state);
                    state.set_cell(*cell, v);
                    frame.pc += 1;
                }
                Instr::Assign { local, expr } => {
                    let m = eval_mutex(expr, frame, state);
                    frame.locals[local.index()] = Value::Mutex(m);
                    frame.pc += 1;
                }
                Instr::BranchIfFalse { cond, target } => {
                    if eval_cond(cond, frame, state) {
                        frame.pc += 1;
                    } else {
                        frame.pc = *target;
                    }
                }
                Instr::Jump(target) => frame.pc = *target,
                Instr::LoopInit { slot, count } => {
                    let n = match count {
                        CountExpr::Lit(n) => *n,
                        CountExpr::Arg(i) => frame.args.get(*i).as_int().max(0) as u32,
                    };
                    frame.loop_slots[*slot as usize] = n;
                    frame.pc += 1;
                }
                Instr::LoopTest { slot, exit } => {
                    let c = &mut frame.loop_slots[*slot as usize];
                    if *c == 0 {
                        frame.pc = *exit;
                    } else {
                        *c -= 1;
                        frame.pc += 1;
                    }
                }
                Instr::Call { method, args } => {
                    let callee_args = eval_call_args(args, frame, state);
                    let method = *method;
                    frame.pc += 1;
                    self.push_frame(method, callee_args);
                }
                Instr::CallVirtual { candidates, selector, args, .. } => {
                    let sel = eval_int(selector, &frame.args, state);
                    let idx = (sel.rem_euclid(candidates.len() as i64)) as usize;
                    let target = candidates[idx];
                    let callee_args = eval_call_args(args, frame, state);
                    frame.pc += 1;
                    self.push_frame(target, callee_args);
                }
                Instr::Ret => {
                    let frame = self.frames.pop().expect("ret without frame");
                    assert!(
                        frame.sync_stack.is_empty(),
                        "returning while holding monitors {:?}",
                        frame.sync_stack
                    );
                    if self.frames.is_empty() {
                        return StepOutcome::Finished;
                    }
                }
            }
        }
        panic!("thread exceeded {INTERNAL_STEP_LIMIT} internal steps: non-terminating internal loop");
    }

    fn push_frame(&mut self, method: MethodIdx, args: RequestArgs) {
        let m = &self.program.methods[method.index()];
        assert_eq!(args.len(), m.arity, "call arity mismatch for {}", m.name);
        self.frames.push(Frame {
            method,
            pc: 0,
            locals: vec![Value::Int(0); m.n_locals as usize],
            loop_slots: vec![0; m.n_loop_slots as usize],
            args,
            sync_stack: Vec::new(),
        });
    }
}

fn eval_dur(d: &DurExpr, args: &RequestArgs) -> u64 {
    match d {
        DurExpr::Nanos(n) => *n,
        DurExpr::Arg(i) => args.get(*i).as_dur_nanos(),
    }
}

fn eval_int(e: &IntExpr, args: &RequestArgs, state: &ObjectState) -> i64 {
    match e {
        IntExpr::Lit(v) => *v,
        IntExpr::Arg(i) => args.get(*i).as_int(),
        IntExpr::Cell(c) => state.cell(*c),
    }
}

fn eval_mutex(e: &MutexExpr, frame: &Frame, state: &ObjectState) -> MutexId {
    match e {
        MutexExpr::This => state.this_mutex,
        MutexExpr::Konst(m) => *m,
        MutexExpr::Arg(i) => frame.args.get(*i).as_mutex(),
        MutexExpr::Local(l) => frame.locals[l.index()].as_mutex(),
        MutexExpr::Field(f) => state.field(*f),
        MutexExpr::Pool { base, len, index_arg } => {
            let idx = frame.args.get(*index_arg).as_int().rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::PoolByCell { base, len, cell } => {
            let idx = state.cell(*cell).rem_euclid(*len as i64) as u32;
            MutexId::new(base + idx)
        }
        MutexExpr::CallResult { resolves_to, .. } => state.field(*resolves_to),
    }
}

fn eval_cond(c: &CondExpr, frame: &Frame, state: &ObjectState) -> bool {
    match c {
        CondExpr::Konst(b) => *b,
        CondExpr::ArgFlag(i) => frame.args.get(*i).as_bool(),
        CondExpr::ArgIntLt(i, k) => frame.args.get(*i).as_int() < *k,
        CondExpr::CellEq(cell, k) => state.cell(*cell) == *k,
        CondExpr::CellLt(cell, k) => state.cell(*cell) < *k,
        CondExpr::CellGe(cell, k) => state.cell(*cell) >= *k,
        CondExpr::ParamEqField(i, f) => frame.args.get(*i).as_mutex() == state.field(*f),
        CondExpr::Not(inner) => !eval_cond(inner, frame, state),
    }
}

fn eval_call_args(args: &[ArgExpr], frame: &Frame, state: &ObjectState) -> RequestArgs {
    args.iter()
        .map(|a| match a {
            ArgExpr::Const(v) => *v,
            ArgExpr::CallerArg(i) => frame.args.get(*i),
            ArgExpr::Local(l) => frame.locals[l.index()],
            ArgExpr::Field(f) => Value::Mutex(state.field(*f)),
        })
        .collect()
}

/// Runs a VM to completion with every action auto-granted, returning the
/// emitted action trace. Only meaningful for single-threaded execution —
/// used by tests, the analysis oracle, and the transformation-equivalence
/// property checks.
pub fn run_to_completion(vm: &mut ThreadVm, state: &mut ObjectState) -> Vec<Action> {
    let mut trace = Vec::new();
    loop {
        match vm.step(state) {
            StepOutcome::Action(a) => trace.push(a),
            StepOutcome::Finished => return trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Method, ObjectImpl, Stmt};
    use crate::compile::compile;
    use crate::ids::LocalId;

    fn make(body: Vec<Stmt>, arity: usize, n_locals: u32) -> Arc<CompiledObject> {
        compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 4,
            n_fields: 2,
            methods: vec![Method {
                name: "m".into(),
                arity,
                n_locals,
                public: true,
                is_final: true,
                body,
            }],
        })
    }

    fn run(obj: Arc<CompiledObject>, args: Vec<Value>) -> (Vec<Action>, ObjectState) {
        let mut state = ObjectState::for_object(&obj, MutexId::new(1000));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::new(args));
        let trace = run_to_completion(&mut vm, &mut state);
        (trace, state)
    }

    #[test]
    fn straight_line_trace() {
        let obj = make(
            vec![
                Stmt::Compute(DurExpr::millis(2)),
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::This,
                    body: vec![Stmt::Update { cell: CellId::new(0), delta: IntExpr::Lit(5) }],
                },
            ],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert_eq!(
            trace,
            vec![
                Action::Compute { dur_ns: 2_000_000 },
                Action::Lock { sync_id: SyncId::new(0), mutex: MutexId::new(1000) },
                Action::Unlock { sync_id: SyncId::new(0), mutex: MutexId::new(1000) },
            ]
        );
        assert_eq!(state.cell(CellId::new(0)), 5);
    }

    #[test]
    fn branch_on_client_flag() {
        let body = vec![Stmt::If {
            cond: CondExpr::ArgFlag(0),
            then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
            else_branch: vec![Stmt::Nested { service: ServiceId::new(0), dur: DurExpr::millis(12) }],
        }];
        let obj = make(body, 1, 0);
        let (t_true, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(t_true, vec![Action::Compute { dur_ns: 1_000_000 }]);
        let (t_false, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(
            t_false,
            vec![Action::Nested { service: ServiceId::new(0), dur_ns: 12_000_000 }]
        );
    }

    #[test]
    fn for_loop_repeats_body() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Lit(3),
                body: vec![Stmt::Update { cell: CellId::new(1), delta: IntExpr::Lit(2) }],
            }],
            0,
            0,
        );
        let (trace, state) = run(obj, vec![]);
        assert!(trace.is_empty()); // pure internal work
        assert_eq!(state.cell(CellId::new(1)), 6);
    }

    #[test]
    fn for_loop_count_from_arg_and_zero() {
        let obj = make(
            vec![Stmt::For {
                count: CountExpr::Arg(0),
                body: vec![Stmt::Compute(DurExpr::millis(1))],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(2)]);
        assert_eq!(trace.len(), 2);
        let (trace, _) = run(obj.clone(), vec![Value::Int(0)]);
        assert!(trace.is_empty());
        // Negative counts clamp to zero.
        let (trace, _) = run(obj, vec![Value::Int(-5)]);
        assert!(trace.is_empty());
    }

    #[test]
    fn pool_mutex_selected_by_client_index() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Pool { base: 100, len: 10, index_arg: 0 },
                body: vec![],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Int(7)]);
        assert_eq!(
            trace[0],
            Action::Lock { sync_id: SyncId::new(0), mutex: MutexId::new(107) }
        );
        // Index wraps modulo pool size.
        let (trace, _) = run(obj, vec![Value::Int(13)]);
        assert_eq!(
            trace[0],
            Action::Lock { sync_id: SyncId::new(0), mutex: MutexId::new(103) }
        );
    }

    #[test]
    fn local_assignment_tracks_lock_object() {
        // local = args[0]; sync(local) { ... } — unlock releases what was
        // locked even though nothing reassigns here.
        let obj = make(
            vec![
                Stmt::Assign { local: LocalId::new(0), expr: MutexExpr::Arg(0) },
                Stmt::Sync {
                    sync_id: SyncId::new(0),
                    param: MutexExpr::Local(LocalId::new(0)),
                    body: vec![Stmt::Assign { local: LocalId::new(0), expr: MutexExpr::This }],
                },
            ],
            1,
            1,
        );
        let (trace, _) = run(obj, vec![Value::Mutex(MutexId::new(55))]);
        assert_eq!(
            trace,
            vec![
                Action::Lock { sync_id: SyncId::new(0), mutex: MutexId::new(55) },
                // Reassignment inside the block must not change what is unlocked.
                Action::Unlock { sync_id: SyncId::new(0), mutex: MutexId::new(55) },
            ]
        );
    }

    #[test]
    fn early_return_unlocks_monitors() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![Stmt::If {
                    cond: CondExpr::ArgFlag(0),
                    then_branch: vec![Stmt::Return],
                    else_branch: vec![],
                }, Stmt::Compute(DurExpr::millis(1))],
            }],
            1,
            0,
        );
        let (trace, _) = run(obj.clone(), vec![Value::Bool(true)]);
        assert_eq!(trace.len(), 2); // lock + unlock, no compute
        assert!(matches!(trace[1], Action::Unlock { .. }));
        let (trace, _) = run(obj, vec![Value::Bool(false)]);
        assert_eq!(trace.len(), 3); // lock + compute + unlock
    }

    #[test]
    fn local_call_pushes_frame() {
        let callee = Method {
            name: "callee".into(),
            arity: 1,
            n_locals: 0,
            public: false,
            is_final: true,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                param: MutexExpr::Arg(0),
                body: vec![],
            }],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::Call { method: MethodIdx::new(1), args: vec![ArgExpr::CallerArg(0)] }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, callee],
        });
        let mut state = ObjectState::for_object(&obj, MutexId::new(1));
        let mut vm = ThreadVm::new(
            obj,
            MethodIdx::new(0),
            RequestArgs::new(vec![Value::Mutex(MutexId::new(42))]),
        );
        let trace = run_to_completion(&mut vm, &mut state);
        assert_eq!(
            trace,
            vec![
                Action::Lock { sync_id: SyncId::new(1), mutex: MutexId::new(42) },
                Action::Unlock { sync_id: SyncId::new(1), mutex: MutexId::new(42) },
            ]
        );
    }

    #[test]
    fn virtual_call_dispatches_by_selector() {
        let mk_leaf = |name: &str, ms: u64| Method {
            name: name.into(),
            arity: 0,
            n_locals: 0,
            public: false,
            is_final: false,
            body: vec![Stmt::Compute(DurExpr::millis(ms))],
        };
        let caller = Method {
            name: "caller".into(),
            arity: 1,
            n_locals: 0,
            public: true,
            is_final: true,
            body: vec![Stmt::VirtualCall {
                site: crate::ids::CallSiteId::new(0),
                candidates: vec![MethodIdx::new(1), MethodIdx::new(2)],
                selector: IntExpr::Arg(0),
                args: vec![],
            }],
        };
        let obj = compile(&ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![caller, mk_leaf("a", 1), mk_leaf("b", 2)],
        });
        let run_sel = |sel: i64| {
            let mut state = ObjectState::for_object(&obj, MutexId::new(1));
            let mut vm =
                ThreadVm::new(obj.clone(), MethodIdx::new(0), RequestArgs::new(vec![Value::Int(sel)]));
            run_to_completion(&mut vm, &mut state)
        };
        assert_eq!(run_sel(0), vec![Action::Compute { dur_ns: 1_000_000 }]);
        assert_eq!(run_sel(1), vec![Action::Compute { dur_ns: 2_000_000 }]);
        assert_eq!(run_sel(2), vec![Action::Compute { dur_ns: 1_000_000 }]);
        // Negative selectors use euclidean remainder (stay in range).
        assert_eq!(run_sel(-1), vec![Action::Compute { dur_ns: 2_000_000 }]);
    }

    #[test]
    fn wait_loop_reevaluates_condition() {
        // while (cell0 < 1) wait(this); — after the engine sets the cell
        // and resumes, the loop must exit.
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![Stmt::While {
                    cond: CondExpr::CellLt(CellId::new(0), 1),
                    body: vec![Stmt::Wait(MutexExpr::This)],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(9));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Lock { sync_id: SyncId::new(0), mutex: MutexId::new(9) })
        );
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Wait { mutex: MutexId::new(9) })
        );
        // Engine: another thread sets the cell, notifies, VM resumes.
        state.set_cell(CellId::new(0), 1);
        assert_eq!(
            vm.step(&mut state),
            StepOutcome::Action(Action::Unlock { sync_id: SyncId::new(0), mutex: MutexId::new(9) })
        );
        assert_eq!(vm.step(&mut state), StepOutcome::Finished);
    }

    #[test]
    fn held_monitors_reported_in_order() {
        let obj = make(
            vec![Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::Konst(MutexId::new(1)),
                body: vec![Stmt::Sync {
                    sync_id: SyncId::new(1),
                    param: MutexExpr::Konst(MutexId::new(2)),
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                }],
            }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state); // lock m1
        vm.step(&mut state); // lock m2
        assert_eq!(vm.held_monitors(), vec![MutexId::new(1), MutexId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "non-terminating internal loop")]
    fn internal_infinite_loop_detected() {
        let obj = make(
            vec![Stmt::While { cond: CondExpr::Konst(true), body: vec![] }],
            0,
            0,
        );
        let mut state = ObjectState::for_object(&obj, MutexId::new(0));
        let mut vm = ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
        vm.step(&mut state);
    }

    #[test]
    fn state_hash_changes_with_state() {
        let obj = make(vec![], 0, 0);
        let a = ObjectState::for_object(&obj, MutexId::new(1));
        let mut b = ObjectState::for_object(&obj, MutexId::new(1));
        assert_eq!(a.state_hash(), b.state_hash());
        b.set_cell(CellId::new(0), 1);
        assert_ne!(a.state_hash(), b.state_hash());
    }

    #[test]
    #[should_panic(expected = "expects 1 args")]
    fn arity_mismatch_panics() {
        let obj = make(vec![], 1, 0);
        ThreadVm::new(obj, MethodIdx::new(0), RequestArgs::empty());
    }
}
