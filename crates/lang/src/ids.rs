//! Typed identifiers. Each is a `u32` newtype so the interpreter's hot
//! state stays small (see the type-sizes guidance in the perf book) while
//! the type system prevents mixing, say, a mutex id with a syncid.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            #[inline]
            pub const fn new(v: u32) -> Self {
                $name(v)
            }
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Runtime identity of a mutex (a Java monitor object). In the Java
    /// model a condition variable *is* its mutex, so this id also names the
    /// condition variable (1:1 relationship, paper §2).
    MutexId,
    "m"
);

id_type!(
    /// Static identity of one `synchronized` block in the source — the
    /// "globally unique syncid" of paper §4.1. Assigned by the analysis (or
    /// by the builder in unanalysed programs) in a deterministic traversal.
    SyncId,
    "s"
);

id_type!(
    /// A cell of replicated object state (stands in for a Java field whose
    /// value the replicas must agree on).
    CellId,
    "c"
);

id_type!(
    /// An instance variable holding an object reference used as a lock
    /// parameter. Statically unknowable — the paper's "spontaneous"
    /// parameter class.
    FieldId,
    "f"
);

id_type!(
    /// An external service targeted by a nested invocation.
    ServiceId,
    "svc"
);

id_type!(
    /// Index of a method within its [`crate::ast::ObjectImpl`].
    MethodIdx,
    "fn"
);

id_type!(
    /// A method-local variable that can hold a mutex reference
    /// (assignment-tracked for lock-parameter analysis).
    LocalId,
    "v"
);

id_type!(
    /// A virtual-dispatch call site (used by the analysis repository
    /// approach of paper §4.4).
    CallSiteId,
    "cs"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", MutexId::new(7)), "m7");
        assert_eq!(format!("{:?}", SyncId::new(3)), "s3");
        assert_eq!(format!("{}", ServiceId::new(0)), "svc0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MutexId::new(1));
        set.insert(MutexId::new(1));
        set.insert(MutexId::new(2));
        assert_eq!(set.len(), 2);
        assert!(MutexId::new(1) < MutexId::new(2));
    }

    #[test]
    fn index_roundtrip() {
        assert_eq!(CellId::new(9).index(), 9);
        assert_eq!(MethodIdx::from(4u32).index(), 4);
    }

    #[test]
    fn ids_are_small() {
        assert_eq!(std::mem::size_of::<MutexId>(), 4);
        assert_eq!(std::mem::size_of::<Option<SyncId>>(), 8);
    }
}
