//! AST → bytecode linearizer.
//!
//! Interpretation has to be an O(1)-step state machine (every scheduler
//! decision point suspends the thread, and a replica juggles hundreds of
//! suspended threads), so tree-walking with host-stack recursion is out.
//! The compiler flattens each method into a `Vec<Instr>` with explicit
//! jump targets; loops get dedicated counter slots; `return` inside
//! `synchronized` blocks compiles to the unlock cascade Java performs
//! implicitly.

use crate::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr, ObjectImpl, Stmt};
use crate::ids::{CallSiteId, CellId, LocalId, MethodIdx, ServiceId, SyncId};
use crate::threaded::{self, ThreadedCode};
use std::sync::Arc;

/// One bytecode instruction. `Lock`/`Unlock` correspond to the beginning
/// and end of a `synchronized` block (the paper's source transformation
/// replaces the block with explicit `scheduler.lock`/`unlock` calls —
/// here the compiler performs that rewriting).
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    Compute(DurExpr),
    Lock {
        sync_id: SyncId,
        param: MutexExpr,
    },
    /// Unlocks the monitor recorded when the matching `Lock` executed
    /// (the parameter expression may have been reassigned since; Java
    /// unlocks the object that was locked, not the expression re-read).
    Unlock {
        sync_id: SyncId,
    },
    Wait(MutexExpr),
    Notify {
        param: MutexExpr,
        all: bool,
    },
    Nested {
        service: ServiceId,
        dur: DurExpr,
    },
    Update {
        cell: CellId,
        delta: IntExpr,
    },
    UpdateIndexed {
        base: u32,
        len: u32,
        index_arg: usize,
        delta: IntExpr,
    },
    SetCell {
        cell: CellId,
        value: IntExpr,
    },
    Assign {
        local: LocalId,
        expr: MutexExpr,
    },
    LockInfo {
        sync_id: SyncId,
        param: MutexExpr,
    },
    IgnoreSync {
        sync_id: SyncId,
    },
    /// Jump to `target` if `cond` evaluates false.
    BranchIfFalse {
        cond: CondExpr,
        target: usize,
    },
    Jump(usize),
    /// Initialise loop counter `slot` with the trip count.
    LoopInit {
        slot: u16,
        count: CountExpr,
    },
    /// If the counter is zero jump to `exit`; otherwise decrement and
    /// fall through into the loop body.
    LoopTest {
        slot: u16,
        exit: usize,
    },
    Call {
        method: MethodIdx,
        args: Vec<ArgExpr>,
    },
    CallVirtual {
        site: CallSiteId,
        candidates: Vec<MethodIdx>,
        selector: IntExpr,
        args: Vec<ArgExpr>,
    },
    /// Return from the current frame. All monitors of the frame must have
    /// been released by preceding `Unlock`s (the compiler guarantees it).
    Ret,
}

/// A compiled method: flat code plus frame-shape metadata.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    pub name: String,
    pub arity: usize,
    pub n_locals: u32,
    pub n_loop_slots: u16,
    pub public: bool,
    pub code: Vec<Instr>,
}

/// A compiled object: all methods, ready for the interpreter. Wrapped in
/// `Arc` by callers so every replica shares one copy.
///
/// `methods[..].code` keeps the analysable `Instr` form (what
/// `dmt-analysis` and the reports walk); `flat` is the threaded-code
/// lowering the interpreter actually dispatches on.
#[derive(Clone, Debug)]
pub struct CompiledObject {
    pub name: String,
    pub methods: Vec<CompiledMethod>,
    pub n_cells: u32,
    pub n_fields: u32,
    /// Flat threaded-code stream (all methods concatenated, absolute
    /// pcs, operand side pools). See [`crate::threaded`].
    pub flat: ThreadedCode,
}

impl CompiledObject {
    pub fn method_by_name(&self, name: &str) -> Option<MethodIdx> {
        self.methods
            .iter()
            .position(|m| m.name == name)
            .map(|i| MethodIdx::new(i as u32))
    }

    /// Exclusive upper bound of the mutex ids named statically by the
    /// program (`Konst` operands and pool ranges). Dynamic operands
    /// (arguments, locals, fields) resolve to ids the caller supplies,
    /// so scenario builders must extend the bound with any mutex their
    /// client arguments carry. The engine places the dense `this`
    /// monitor at the combined bound, keeping the whole id space
    /// contiguous for the slot-table bookkeeping.
    pub fn mutex_bound(&self) -> u32 {
        fn expr_bound(e: &MutexExpr) -> u32 {
            match e {
                MutexExpr::Konst(m) => m.0 + 1,
                MutexExpr::Pool { base, len, .. } | MutexExpr::PoolByCell { base, len, .. } => {
                    base + len
                }
                _ => 0,
            }
        }
        let mut bound = 0;
        for m in &self.methods {
            for i in &m.code {
                let b = match i {
                    Instr::Lock { param, .. }
                    | Instr::Wait(param)
                    | Instr::Notify { param, .. }
                    | Instr::LockInfo { param, .. }
                    | Instr::Assign { expr: param, .. } => expr_bound(param),
                    _ => 0,
                };
                bound = bound.max(b);
            }
        }
        bound
    }
}

/// Compiles a validated [`ObjectImpl`] with superinstruction fusion on
/// (the default everywhere). Panics if validation fails — compiling an
/// invalid object is a harness bug, not a runtime condition.
pub fn compile(obj: &ObjectImpl) -> Arc<CompiledObject> {
    compile_opts(obj, true)
}

/// [`compile`] with the superinstruction fusion pass disabled. Used by
/// the fusion-equivalence differential tests and the dispatch-style
/// microbench; the unfused stream is also the only one
/// [`crate::interp::ThreadVm::step_match`] (the reference match-loop
/// interpreter) can execute, because its `Instr` pcs map 1:1 onto ops.
pub fn compile_unfused(obj: &ObjectImpl) -> Arc<CompiledObject> {
    compile_opts(obj, false)
}

fn compile_opts(obj: &ObjectImpl, fuse: bool) -> Arc<CompiledObject> {
    let problems = obj.validate();
    assert!(
        problems.is_empty(),
        "cannot compile invalid object: {problems:?}"
    );
    let methods: Vec<CompiledMethod> = obj
        .methods
        .iter()
        .map(|m| {
            let mut ctx = Ctx::default();
            ctx.emit_block(&m.body);
            ctx.code.push(Instr::Ret);
            ctx.resolve();
            CompiledMethod {
                name: m.name.clone(),
                arity: m.arity,
                n_locals: m.n_locals,
                n_loop_slots: ctx.next_slot,
                public: m.public,
                code: ctx.code,
            }
        })
        .collect();
    let flat = threaded::lower(&methods, fuse);
    if cfg!(debug_assertions) {
        // Fusion must never move a scheduler-visible emission point.
        for (i, m) in methods.iter().enumerate() {
            let unfused = threaded::lower(&methods[i..=i], false);
            debug_assert_eq!(
                threaded::action_profile(&flat, i, m.code.len()),
                threaded::action_profile(&unfused, 0, m.code.len()),
                "fusion changed the emission profile of {}",
                m.name
            );
        }
    }
    Arc::new(CompiledObject {
        name: obj.name.clone(),
        methods,
        n_cells: obj.n_cells,
        n_fields: obj.n_fields,
        flat,
    })
}

/// Compilation context for one method. Jump targets are emitted as labels
/// and patched in a final pass.
#[derive(Default)]
struct Ctx {
    code: Vec<Instr>,
    /// Sync blocks currently open at the emission point (for `Return`).
    sync_stack: Vec<SyncId>,
    /// Labels: index → resolved pc.
    labels: Vec<usize>,
    next_slot: u16,
}

const UNRESOLVED: usize = usize::MAX;

impl Ctx {
    fn new_label(&mut self) -> usize {
        self.labels.push(UNRESOLVED);
        self.labels.len() - 1
    }

    fn place(&mut self, label: usize) {
        self.labels[label] = self.code.len();
    }

    fn emit_block(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.emit_stmt(s);
        }
    }

    fn emit_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Compute(d) => self.code.push(Instr::Compute(d.clone())),
            Stmt::Sync {
                sync_id,
                param,
                body,
            } => {
                self.code.push(Instr::Lock {
                    sync_id: *sync_id,
                    param: param.clone(),
                });
                self.sync_stack.push(*sync_id);
                self.emit_block(body);
                self.sync_stack.pop();
                self.code.push(Instr::Unlock { sync_id: *sync_id });
            }
            Stmt::Wait(p) => self.code.push(Instr::Wait(p.clone())),
            Stmt::Notify { param, all } => self.code.push(Instr::Notify {
                param: param.clone(),
                all: *all,
            }),
            Stmt::Nested { service, dur } => self.code.push(Instr::Nested {
                service: *service,
                dur: dur.clone(),
            }),
            Stmt::Update { cell, delta } => self.code.push(Instr::Update {
                cell: *cell,
                delta: delta.clone(),
            }),
            Stmt::UpdateIndexed {
                base,
                len,
                index_arg,
                delta,
            } => self.code.push(Instr::UpdateIndexed {
                base: *base,
                len: *len,
                index_arg: *index_arg,
                delta: delta.clone(),
            }),
            Stmt::SetCell { cell, value } => self.code.push(Instr::SetCell {
                cell: *cell,
                value: value.clone(),
            }),
            Stmt::Assign { local, expr } => self.code.push(Instr::Assign {
                local: *local,
                expr: expr.clone(),
            }),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let else_label = self.new_label();
                self.code.push(Instr::BranchIfFalse {
                    cond: cond.clone(),
                    target: else_label,
                });
                self.emit_block(then_branch);
                if else_branch.is_empty() {
                    self.place(else_label);
                } else {
                    let end_label = self.new_label();
                    self.code.push(Instr::Jump(end_label));
                    self.place(else_label);
                    self.emit_block(else_branch);
                    self.place(end_label);
                }
            }
            Stmt::For { count, body } => {
                let slot = self.next_slot;
                self.next_slot += 1;
                self.code.push(Instr::LoopInit {
                    slot,
                    count: count.clone(),
                });
                let test_label = self.new_label();
                let exit_label = self.new_label();
                self.place(test_label);
                self.code.push(Instr::LoopTest {
                    slot,
                    exit: exit_label,
                });
                self.emit_block(body);
                self.code.push(Instr::Jump(test_label));
                self.place(exit_label);
            }
            Stmt::While { cond, body } => {
                let test_label = self.new_label();
                let exit_label = self.new_label();
                self.place(test_label);
                self.code.push(Instr::BranchIfFalse {
                    cond: cond.clone(),
                    target: exit_label,
                });
                self.emit_block(body);
                self.code.push(Instr::Jump(test_label));
                self.place(exit_label);
            }
            Stmt::Call { method, args } => self.code.push(Instr::Call {
                method: *method,
                args: args.clone(),
            }),
            Stmt::VirtualCall {
                site,
                candidates,
                selector,
                args,
            } => self.code.push(Instr::CallVirtual {
                site: *site,
                candidates: candidates.clone(),
                selector: selector.clone(),
                args: args.clone(),
            }),
            Stmt::LockInfo { sync_id, param } => self.code.push(Instr::LockInfo {
                sync_id: *sync_id,
                param: param.clone(),
            }),
            Stmt::IgnoreSync { sync_id } => self.code.push(Instr::IgnoreSync { sync_id: *sync_id }),
            Stmt::Return => {
                // Unlock every enclosing synchronized block, innermost
                // first, then return — Java's implicit monitorexit cascade.
                for sid in self.sync_stack.iter().rev() {
                    self.code.push(Instr::Unlock { sync_id: *sid });
                }
                self.code.push(Instr::Ret);
            }
        }
    }

    /// Patches label references into absolute pcs.
    fn resolve(&mut self) {
        for instr in &mut self.code {
            match instr {
                Instr::BranchIfFalse { target, .. } | Instr::Jump(target) => {
                    let pc = self.labels[*target];
                    assert_ne!(pc, UNRESOLVED, "unplaced label");
                    *target = pc;
                }
                Instr::LoopTest { exit, .. } => {
                    let pc = self.labels[*exit];
                    assert_ne!(pc, UNRESOLVED, "unplaced label");
                    *exit = pc;
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CondExpr, CountExpr, DurExpr, Method};

    fn obj_with(body: Vec<Stmt>) -> ObjectImpl {
        ObjectImpl {
            name: "T".into(),
            n_cells: 2,
            n_fields: 1,
            methods: vec![Method {
                name: "m".into(),
                arity: 2,
                n_locals: 1,
                public: true,
                is_final: true,
                body,
            }],
        }
    }

    #[test]
    fn sync_block_brackets_body() {
        let obj = obj_with(vec![Stmt::Sync {
            sync_id: SyncId::new(0),
            param: MutexExpr::This,
            body: vec![Stmt::Compute(DurExpr::millis(1))],
        }]);
        let c = compile(&obj);
        let code = &c.methods[0].code;
        assert!(matches!(code[0], Instr::Lock { .. }));
        assert!(matches!(code[1], Instr::Compute(_)));
        assert!(matches!(code[2], Instr::Unlock { .. }));
        assert!(matches!(code[3], Instr::Ret));
    }

    #[test]
    fn if_without_else_falls_through() {
        let obj = obj_with(vec![
            Stmt::If {
                cond: CondExpr::ArgFlag(0),
                then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
                else_branch: vec![],
            },
            Stmt::Compute(DurExpr::millis(2)),
        ]);
        let c = compile(&obj);
        let code = &c.methods[0].code;
        // BranchIfFalse target must point at the trailing compute.
        match &code[0] {
            Instr::BranchIfFalse { target, .. } => assert_eq!(*target, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_else_emits_jump_over_else() {
        let obj = obj_with(vec![Stmt::If {
            cond: CondExpr::ArgFlag(0),
            then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
            else_branch: vec![Stmt::Compute(DurExpr::millis(2))],
        }]);
        let c = compile(&obj);
        let code = &c.methods[0].code;
        // branch, then-compute, jump, else-compute, ret
        assert!(matches!(code[0], Instr::BranchIfFalse { target: 3, .. }));
        assert!(matches!(code[2], Instr::Jump(4)));
        assert!(matches!(code[4], Instr::Ret));
    }

    #[test]
    fn for_loop_allocates_slot_and_targets() {
        let obj = obj_with(vec![Stmt::For {
            count: CountExpr::Lit(3),
            body: vec![Stmt::Compute(DurExpr::millis(1))],
        }]);
        let c = compile(&obj);
        let m = &c.methods[0];
        assert_eq!(m.n_loop_slots, 1);
        // LoopInit, LoopTest(exit=4), Compute, Jump(1), Ret
        assert!(matches!(m.code[0], Instr::LoopInit { slot: 0, .. }));
        assert!(matches!(m.code[1], Instr::LoopTest { slot: 0, exit: 4 }));
        assert!(matches!(m.code[3], Instr::Jump(1)));
    }

    #[test]
    fn nested_loops_get_distinct_slots() {
        let inner = Stmt::For {
            count: CountExpr::Lit(2),
            body: vec![],
        };
        let obj = obj_with(vec![Stmt::For {
            count: CountExpr::Lit(3),
            body: vec![inner],
        }]);
        let c = compile(&obj);
        let slots: Vec<u16> = c.methods[0]
            .code
            .iter()
            .filter_map(|i| match i {
                Instr::LoopInit { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(slots, vec![0, 1]);
        assert_eq!(c.methods[0].n_loop_slots, 2);
    }

    #[test]
    fn return_inside_sync_unlocks_all() {
        let obj = obj_with(vec![Stmt::Sync {
            sync_id: SyncId::new(0),
            param: MutexExpr::This,
            body: vec![Stmt::Sync {
                sync_id: SyncId::new(1),
                param: MutexExpr::Arg(0),
                body: vec![Stmt::Return],
            }],
        }]);
        let c = compile(&obj);
        let code = &c.methods[0].code;
        // Lock s0, Lock s1, Unlock s1, Unlock s0, Ret, (dead: Unlock s1, Unlock s0, Ret)
        assert!(matches!(
            code[0],
            Instr::Lock {
                sync_id: SyncId(0),
                ..
            }
        ));
        assert!(matches!(
            code[1],
            Instr::Lock {
                sync_id: SyncId(1),
                ..
            }
        ));
        assert!(matches!(code[2], Instr::Unlock { sync_id: SyncId(1) }));
        assert!(matches!(code[3], Instr::Unlock { sync_id: SyncId(0) }));
        assert!(matches!(code[4], Instr::Ret));
    }

    #[test]
    fn while_loop_shape() {
        let obj = obj_with(vec![Stmt::While {
            cond: CondExpr::CellLt(CellId::new(0), 5),
            body: vec![Stmt::Wait(MutexExpr::This)],
        }]);
        let c = compile(&obj);
        let code = &c.methods[0].code;
        assert!(matches!(code[0], Instr::BranchIfFalse { target: 3, .. }));
        assert!(matches!(code[1], Instr::Wait(_)));
        assert!(matches!(code[2], Instr::Jump(0)));
        assert!(matches!(code[3], Instr::Ret));
    }

    #[test]
    #[should_panic(expected = "cannot compile invalid object")]
    fn compiling_invalid_object_panics() {
        let obj = obj_with(vec![Stmt::Update {
            cell: CellId::new(99),
            delta: IntExpr::Lit(1),
        }]);
        compile(&obj);
    }

    #[test]
    fn method_lookup() {
        let c = compile(&obj_with(vec![]));
        assert_eq!(c.method_by_name("m"), Some(MethodIdx::new(0)));
        assert_eq!(c.method_by_name("nope"), None);
    }
}
