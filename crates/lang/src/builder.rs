//! Fluent construction of object implementations.
//!
//! Workloads, tests and examples build dozens of small programs; doing
//! that with raw AST literals is noisy and it is easy to hand out
//! colliding syncids. The builder assigns syncids automatically in source
//! order (matching the deterministic numbering the analysis expects) and
//! checks structural validity on `build()`.

use crate::ast::{
    ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, Method, MutexExpr, ObjectImpl, Stmt,
};
use crate::ids::{CallSiteId, CellId, LocalId, MethodIdx, ServiceId, SyncId};

/// Builds an [`ObjectImpl`].
pub struct ObjectBuilder {
    name: String,
    methods: Vec<Method>,
    n_cells: u32,
    n_fields: u32,
    next_sync: u32,
    next_call_site: u32,
}

impl ObjectBuilder {
    pub fn new(name: impl Into<String>) -> Self {
        ObjectBuilder {
            name: name.into(),
            methods: Vec::new(),
            n_cells: 0,
            n_fields: 0,
            next_sync: 0,
            next_call_site: 0,
        }
    }

    /// Declares `n` replicated state cells; returns their ids.
    pub fn cells(&mut self, n: u32) -> Vec<CellId> {
        let start = self.n_cells;
        self.n_cells += n;
        (start..self.n_cells).map(CellId::new).collect()
    }

    pub fn cell(&mut self) -> CellId {
        self.cells(1)[0]
    }

    /// Declares `n` monitor-reference instance fields; returns their ids.
    pub fn fields(&mut self, n: u32) -> Vec<crate::ids::FieldId> {
        let start = self.n_fields;
        self.n_fields += n;
        (start..self.n_fields)
            .map(crate::ids::FieldId::new)
            .collect()
    }

    pub fn field(&mut self) -> crate::ids::FieldId {
        self.fields(1)[0]
    }

    /// Starts a method. Finish it with [`MethodBuilder::done`].
    pub fn method(&mut self, name: impl Into<String>, arity: usize) -> MethodBuilder<'_> {
        MethodBuilder {
            obj: self,
            name: name.into(),
            arity,
            n_locals: 0,
            public: true,
            is_final: true,
            stack: vec![Vec::new()],
        }
    }

    /// The index the *next* completed method will get — usable for
    /// (mutually) recursive call targets.
    pub fn next_method_idx(&self) -> MethodIdx {
        MethodIdx::new(self.methods.len() as u32)
    }

    /// Finalises the object, panicking on structural problems.
    pub fn build(self) -> ObjectImpl {
        let obj = ObjectImpl {
            name: self.name,
            methods: self.methods,
            n_cells: self.n_cells,
            n_fields: self.n_fields,
        };
        let problems = obj.validate();
        assert!(problems.is_empty(), "invalid object: {problems:?}");
        obj
    }

    fn fresh_sync(&mut self) -> SyncId {
        let id = SyncId::new(self.next_sync);
        self.next_sync += 1;
        id
    }

    fn fresh_call_site(&mut self) -> CallSiteId {
        let id = CallSiteId::new(self.next_call_site);
        self.next_call_site += 1;
        id
    }
}

/// Builds one method body. Block-structured statements open with
/// `sync_enter` / `if_enter` / `for_enter` / `while_enter` and close with
/// the matching `*_exit`; the builder keeps the block stack.
pub struct MethodBuilder<'a> {
    obj: &'a mut ObjectBuilder,
    name: String,
    arity: usize,
    n_locals: u32,
    public: bool,
    is_final: bool,
    /// Stack of open blocks; the innermost is last. Each entry under an
    /// open structured statement is paired with a closer tag.
    stack: Vec<Vec<Stmt>>,
}

impl<'a> MethodBuilder<'a> {
    pub fn private(mut self) -> Self {
        self.public = false;
        self
    }

    pub fn non_final(mut self) -> Self {
        self.is_final = false;
        self
    }

    /// Declares a method-local mutex variable.
    pub fn local(&mut self) -> LocalId {
        let id = LocalId::new(self.n_locals);
        self.n_locals += 1;
        id
    }

    fn push(&mut self, s: Stmt) -> &mut Self {
        self.stack.last_mut().expect("no open block").push(s);
        self
    }

    pub fn compute(&mut self, d: DurExpr) -> &mut Self {
        self.push(Stmt::Compute(d))
    }

    pub fn compute_ms(&mut self, ms: u64) -> &mut Self {
        self.push(Stmt::Compute(DurExpr::millis(ms)))
    }

    pub fn nested(&mut self, service: ServiceId, dur: DurExpr) -> &mut Self {
        self.push(Stmt::Nested { service, dur })
    }

    pub fn update(&mut self, cell: CellId, delta: IntExpr) -> &mut Self {
        self.push(Stmt::Update { cell, delta })
    }

    pub fn add(&mut self, cell: CellId, delta: i64) -> &mut Self {
        self.push(Stmt::Update {
            cell,
            delta: IntExpr::Lit(delta),
        })
    }

    pub fn set_cell(&mut self, cell: CellId, value: IntExpr) -> &mut Self {
        self.push(Stmt::SetCell { cell, value })
    }

    /// `state[base + args[index_arg] % len] += delta`.
    pub fn update_indexed(
        &mut self,
        base: u32,
        len: u32,
        index_arg: usize,
        delta: IntExpr,
    ) -> &mut Self {
        self.push(Stmt::UpdateIndexed {
            base,
            len,
            index_arg,
            delta,
        })
    }

    pub fn assign(&mut self, local: LocalId, expr: MutexExpr) -> &mut Self {
        self.push(Stmt::Assign { local, expr })
    }

    pub fn wait(&mut self, param: MutexExpr) -> &mut Self {
        self.push(Stmt::Wait(param))
    }

    pub fn notify(&mut self, param: MutexExpr) -> &mut Self {
        self.push(Stmt::Notify { param, all: false })
    }

    pub fn notify_all(&mut self, param: MutexExpr) -> &mut Self {
        self.push(Stmt::Notify { param, all: true })
    }

    pub fn call(&mut self, method: MethodIdx, args: Vec<ArgExpr>) -> &mut Self {
        self.push(Stmt::Call { method, args })
    }

    pub fn virtual_call(
        &mut self,
        candidates: Vec<MethodIdx>,
        selector: IntExpr,
        args: Vec<ArgExpr>,
    ) -> &mut Self {
        let site = self.obj.fresh_call_site();
        self.push(Stmt::VirtualCall {
            site,
            candidates,
            selector,
            args,
        })
    }

    pub fn ret(&mut self) -> &mut Self {
        self.push(Stmt::Return)
    }

    /// Adds a whole `synchronized` block whose body is built by `f`.
    pub fn sync(&mut self, param: MutexExpr, f: impl FnOnce(&mut Self)) -> &mut Self {
        let sync_id = self.obj.fresh_sync();
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().expect("sync block not open");
        self.push(Stmt::Sync {
            sync_id,
            param,
            body,
        })
    }

    /// Adds an `if` with both branches built by closures.
    pub fn if_else(
        &mut self,
        cond: CondExpr,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.stack.push(Vec::new());
        then_f(self);
        let then_branch = self.stack.pop().unwrap();
        self.stack.push(Vec::new());
        else_f(self);
        let else_branch = self.stack.pop().unwrap();
        self.push(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    pub fn if_then(&mut self, cond: CondExpr, then_f: impl FnOnce(&mut Self)) -> &mut Self {
        self.if_else(cond, then_f, |_| {})
    }

    pub fn for_loop(&mut self, count: CountExpr, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().unwrap();
        self.push(Stmt::For { count, body })
    }

    pub fn while_loop(&mut self, cond: CondExpr, f: impl FnOnce(&mut Self)) -> &mut Self {
        self.stack.push(Vec::new());
        f(self);
        let body = self.stack.pop().unwrap();
        self.push(Stmt::While { cond, body })
    }

    /// The canonical CV wait loop: `sync(m) { while (!cond) wait(m); }`
    /// with an optional body after the loop, still inside the monitor.
    pub fn sync_wait_until(
        &mut self,
        param: MutexExpr,
        cond: CondExpr,
        f: impl FnOnce(&mut Self),
    ) -> &mut Self {
        let p2 = param.clone();
        self.sync(param, move |b| {
            b.while_loop(cond.negate(), |b| {
                b.wait(p2.clone());
            });
            f(b);
        })
    }

    /// Finishes the method, registering it with the object builder, and
    /// returns its index.
    pub fn done(mut self) -> MethodIdx {
        assert_eq!(
            self.stack.len(),
            1,
            "unclosed block in method {}",
            self.name
        );
        let body = self.stack.pop().unwrap();
        let idx = MethodIdx::new(self.obj.methods.len() as u32);
        self.obj.methods.push(Method {
            name: self.name,
            arity: self.arity,
            n_locals: self.n_locals,
            public: self.public,
            is_final: self.is_final,
            body,
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::ids::{MethodIdx, MutexId};
    use crate::interp::{run_to_completion, Action, ObjectState, ThreadVm};
    use crate::value::{RequestArgs, Value};

    #[test]
    fn builds_counter_object() {
        let mut ob = ObjectBuilder::new("Counter");
        let c = ob.cell();
        let mut m = ob.method("inc", 0);
        m.sync(MutexExpr::This, |b| {
            b.add(c, 1);
        });
        m.done();
        let obj = ob.build();
        assert_eq!(obj.methods.len(), 1);
        assert_eq!(obj.all_sync_ids().len(), 1);
    }

    #[test]
    fn syncids_are_sequential_across_methods() {
        let mut ob = ObjectBuilder::new("O");
        let mut m1 = ob.method("a", 0);
        m1.sync(MutexExpr::This, |_| {});
        m1.sync(MutexExpr::This, |_| {});
        m1.done();
        let mut m2 = ob.method("b", 0);
        m2.sync(MutexExpr::This, |_| {});
        m2.done();
        let obj = ob.build();
        let ids: Vec<u32> = obj.all_sync_ids().iter().map(|s| s.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn wait_until_expands_to_wait_loop() {
        let mut ob = ObjectBuilder::new("Buf");
        let count = ob.cell();
        let mut m = ob.method("take", 0);
        m.sync_wait_until(MutexExpr::This, CondExpr::CellGe(count, 1), |b| {
            b.add(count, -1);
            b.notify_all(MutexExpr::This);
        });
        m.done();
        let obj = ob.build();
        let compiled = compile(&obj);
        let mut state = ObjectState::for_object(&compiled, MutexId::new(5));
        state.set_cell(count, 2); // already satisfied: no wait
        let mut vm = ThreadVm::new(compiled, MethodIdx::new(0), RequestArgs::empty());
        let trace = run_to_completion(&mut vm, &mut state);
        assert_eq!(
            trace,
            vec![
                Action::Lock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(5)
                },
                Action::Notify {
                    mutex: MutexId::new(5),
                    all: true
                },
                Action::Unlock {
                    sync_id: SyncId::new(0),
                    mutex: MutexId::new(5)
                },
            ]
        );
        assert_eq!(state.cell(count), 1);
    }

    #[test]
    fn private_and_nonfinal_flags() {
        let mut ob = ObjectBuilder::new("O");
        let m = ob.method("helper", 0).private().non_final();
        m.done();
        let obj = ob.build();
        assert!(!obj.methods[0].public);
        assert!(!obj.methods[0].is_final);
        assert!(obj.start_methods().is_empty());
    }

    #[test]
    fn locals_are_counted() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 1);
        let l0 = m.local();
        let l1 = m.local();
        m.assign(l0, MutexExpr::Arg(0));
        m.assign(l1, MutexExpr::This);
        m.done();
        let obj = ob.build();
        assert_eq!(obj.methods[0].n_locals, 2);
    }

    #[test]
    #[should_panic(expected = "invalid object")]
    fn build_panics_on_invalid() {
        let mut ob = ObjectBuilder::new("O");
        let mut m = ob.method("m", 0);
        // Arg(3) out of range for arity 0.
        m.sync(MutexExpr::Arg(3), |_| {});
        m.done();
        ob.build();
    }

    #[test]
    fn end_to_end_two_method_object() {
        let mut ob = ObjectBuilder::new("Pair");
        let c = ob.cell();
        let helper_idx = ob.next_method_idx();
        // helper must exist before the public caller references it; build
        // helper first.
        let mut h = ob.method("bump", 1).private();
        h.update(c, IntExpr::Arg(0));
        h.done();
        let mut m = ob.method("twice", 1);
        m.call(helper_idx, vec![ArgExpr::CallerArg(0)]);
        m.call(helper_idx, vec![ArgExpr::CallerArg(0)]);
        m.done();
        let compiled = compile(&ob.build());
        let mut state = ObjectState::for_object(&compiled, MutexId::new(1));
        let mi = compiled.method_by_name("twice").unwrap();
        let mut vm = ThreadVm::new(compiled, mi, RequestArgs::new(vec![Value::Int(21)]));
        run_to_completion(&mut vm, &mut state);
        assert_eq!(state.cell(c), 42);
    }
}
