//! Threaded-code lowering: the dense opcode stream the interpreter
//! dispatches on, plus the superinstruction fusion pass.
//!
//! [`compile`](crate::compile::compile) first linearizes each method into
//! `Vec<Instr>` (the analysable bytecode the transformation and the
//! reports inspect), then [`lower`] flattens *all* methods into one
//! contiguous [`Op`] stream with absolute pcs and pre-resolved operand
//! indices. `Op` is a fixed-size `Copy` word: the interpreter fetches one
//! by value, dispatches on its [`OpCode`] through a dense jump table, and
//! never chases a pointer into expression trees — durations, integer
//! literals and call argument lists live in side pools referenced by
//! index.
//!
//! # Superinstruction fusion
//!
//! [`lower`] optionally rewrites hot adjacent pairs into single fused
//! opcodes. The safety rules (see DESIGN.md §"Threaded code"):
//!
//! * the **first** op of a pair is always *internal* (never emits an
//!   [`Action`](crate::interp::Action)) — so every scheduler-visible
//!   emission point survives fusion bit-for-bit;
//! * the second op must not be a jump target (fusing would skip it on
//!   the fall-through path but execute it on the jump path);
//! * pairs never span a method boundary.
//!
//! Fusion rewrites the first op's code in place; the second op stays in
//! the stream as an *operand carrier* the fused handler reads at
//! `pc + 1`. Nothing moves, so jump targets need no remapping — which is
//! also what makes the fused and unfused streams trivially
//! emission-equivalent (checkable via [`action_profile`]).

use crate::ast::{ArgExpr, CondExpr, CountExpr, DurExpr, IntExpr, MutexExpr};
use crate::compile::{CompiledMethod, Instr};
use crate::ids::MethodIdx;

/// Dense opcodes. The interpreter's dispatch is a `match` over this
/// `repr(u8)` enum — rustc lowers it to a computed-goto-style jump table,
/// with every handler `#[inline(always)]`-folded into the loop.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    // ---- action opcodes: end the current `step` with an Action ----
    Compute,
    Lock,
    Unlock,
    Wait,
    NotifyOne,
    NotifyAll,
    Nested,
    LockInfo,
    IgnoreSync,
    // ---- internal opcodes: mutate state/frames, no scheduler call ----
    Update,
    UpdateIndexed,
    SetCell,
    Assign,
    BranchIfFalse,
    Jump,
    LoopInit,
    LoopTest,
    Call,
    CallVirtual,
    Ret,
    // ---- superinstructions (internal first half + carried second) ----
    /// `Update ; Unlock` — critical-section tail: state update fused with
    /// the monitor exit.
    UpdateUnlock,
    /// `UpdateIndexed ; Unlock` — the Figure-1 hot pair (`update_indexed`
    /// guarded by a pool mutex).
    UpdateIndexedUnlock,
    /// `SetCell ; Unlock`.
    SetCellUnlock,
    /// `BranchIfFalse ; Compute` — compare-and-branch fused with the
    /// guarded compute segment.
    BrFalseCompute,
    /// `BranchIfFalse ; Nested` — compare-and-branch fused with the
    /// guarded nested invocation.
    BrFalseNested,
}

impl OpCode {
    /// True if executing this opcode ends the step with an
    /// [`Action`](crate::interp::Action). Fused branch opcodes emit only
    /// on the fall-through (taken-condition) path but still count: they
    /// contain an emission point.
    pub fn emits_action(self) -> bool {
        !matches!(
            self,
            OpCode::Update
                | OpCode::UpdateIndexed
                | OpCode::SetCell
                | OpCode::Assign
                | OpCode::BranchIfFalse
                | OpCode::Jump
                | OpCode::LoopInit
                | OpCode::LoopTest
                | OpCode::Call
                | OpCode::CallVirtual
                | OpCode::Ret
        )
    }
}

/// Operand sub-tag values for mutex expressions (`Op::t`).
pub mod mtag {
    pub const THIS: u8 = 0;
    pub const KONST: u8 = 1;
    pub const ARG: u8 = 2;
    pub const LOCAL: u8 = 3;
    pub const FIELD: u8 = 4;
    pub const POOL: u8 = 5;
    pub const POOL_BY_CELL: u8 = 6;
    pub const CALL_RESULT: u8 = 7;
}

/// Operand sub-tag values for integer expressions (`Op::t`):
/// literal-pool index / argument index / cell id.
pub mod itag {
    pub const LIT: u8 = 0;
    pub const ARG: u8 = 1;
    pub const CELL: u8 = 2;
}

/// Operand sub-tag values for durations (`Op::t`).
pub mod dtag {
    pub const LIT: u8 = 0;
    pub const ARG: u8 = 1;
}

/// Operand sub-tag values for loop trip counts (`Op::t`).
pub mod ctag {
    pub const LIT: u8 = 0;
    pub const ARG: u8 = 1;
}

/// Condition sub-tags (`Op::t` low bits); [`COND_NEGATE`] is OR-ed in for
/// each `CondExpr::Not` wrapper (only `Not` is recursive, so any
/// condition flattens to a base variant plus a polarity bit).
pub mod cond {
    pub const KONST: u8 = 0;
    pub const ARG_FLAG: u8 = 1;
    pub const ARG_INT_LT: u8 = 2;
    pub const CELL_EQ: u8 = 3;
    pub const CELL_LT: u8 = 4;
    pub const CELL_GE: u8 = 5;
    pub const PARAM_EQ_FIELD: u8 = 6;
}

/// Polarity bit for negated conditions.
pub const COND_NEGATE: u8 = 0x80;

/// One threaded-code word: 20 bytes, `Copy`, fetched by value.
///
/// Field roles are per-opcode (see the lowering), but the conventions
/// are: `t` holds the operand sub-tag (mutex/int/dur/cond variant),
/// `sa` a small index (loop slot, pool `index_arg`), `a` the primary
/// scalar (sync id, jump target, cell, method, local), and `b`/`c`/`d`
/// the pre-resolved operand words (argument indices, literal-pool
/// indices, pool base/len).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Op {
    pub code: OpCode,
    pub t: u8,
    pub sa: u16,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub d: u32,
}

impl Op {
    fn new(code: OpCode) -> Self {
        Op {
            code,
            t: 0,
            sa: 0,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
        }
    }
}

/// A virtual-call site, hoisted out of the fixed-size op word (virtual
/// calls are rare; one indirection there is cheaper than growing every
/// op). `candidates` and `args` are `(start, len)` ranges into
/// [`ThreadedCode::cand_pool`] / [`ThreadedCode::arg_pool`].
#[derive(Clone, Copy, Debug)]
pub struct VCallSpec {
    pub cand_start: u32,
    pub cand_len: u32,
    pub sel_tag: u8,
    pub sel_op: u32,
    pub args_start: u32,
    pub args_len: u32,
}

/// The flat threaded program of one object: every method's ops
/// concatenated, entered via `entries[method]`, with operand side pools.
#[derive(Clone, Debug, Default)]
pub struct ThreadedCode {
    pub ops: Vec<Op>,
    /// Per-method entry pc into `ops`.
    pub entries: Vec<u32>,
    /// 64-bit literals (integer constants, nanosecond durations).
    pub lits: Vec<i64>,
    /// Call-argument expressions, referenced as `(start, len)` ranges.
    pub arg_pool: Vec<ArgExpr>,
    /// Virtual-call candidate method lists.
    pub cand_pool: Vec<MethodIdx>,
    pub vcalls: Vec<VCallSpec>,
    /// Superinstruction pairs the fusion pass rewrote.
    pub fused_pairs: u32,
}

impl ThreadedCode {
    /// Entry pc of `method`.
    #[inline]
    pub fn entry(&self, method: MethodIdx) -> u32 {
        self.entries[method.index()]
    }
}

/// Lowers compiled methods into one flat op stream. `fuse` enables the
/// superinstruction pass (on by default through
/// [`compile`](crate::compile::compile); `compile_unfused` turns it off
/// for differential testing and the dispatch-style microbench).
pub fn lower(methods: &[CompiledMethod], fuse: bool) -> ThreadedCode {
    let mut tc = ThreadedCode::default();
    for m in methods {
        let entry = tc.ops.len() as u32;
        tc.entries.push(entry);
        for instr in &m.code {
            let op = lower_instr(instr, entry, &mut tc);
            tc.ops.push(op);
        }
    }
    if fuse {
        fuse_pairs(&mut tc, methods);
    }
    tc
}

/// Interns a 64-bit literal and returns its pool index.
fn lit(tc: &mut ThreadedCode, v: i64) -> u32 {
    if let Some(i) = tc.lits.iter().position(|&x| x == v) {
        return i as u32;
    }
    tc.lits.push(v);
    (tc.lits.len() - 1) as u32
}

/// Packs a mutex expression into an op's `(t, sa, b, c, d)` fields.
fn pack_mutex(op: &mut Op, e: &MutexExpr) {
    match e {
        MutexExpr::This => op.t = mtag::THIS,
        MutexExpr::Konst(m) => {
            op.t = mtag::KONST;
            op.b = m.0;
        }
        MutexExpr::Arg(i) => {
            op.t = mtag::ARG;
            op.b = *i as u32;
        }
        MutexExpr::Local(l) => {
            op.t = mtag::LOCAL;
            op.b = l.0;
        }
        MutexExpr::Field(f) => {
            op.t = mtag::FIELD;
            op.b = f.0;
        }
        MutexExpr::Pool {
            base,
            len,
            index_arg,
        } => {
            op.t = mtag::POOL;
            op.b = *base;
            op.c = *len;
            op.sa = u16::try_from(*index_arg).expect("pool index argument beyond u16 range");
        }
        MutexExpr::PoolByCell { base, len, cell } => {
            op.t = mtag::POOL_BY_CELL;
            op.b = *base;
            op.c = *len;
            op.d = cell.0;
        }
        MutexExpr::CallResult { resolves_to, .. } => {
            op.t = mtag::CALL_RESULT;
            op.b = resolves_to.0;
        }
    }
}

/// Packs an integer expression into `(tag, operand)`.
fn pack_int(tc: &mut ThreadedCode, e: &IntExpr) -> (u8, u32) {
    match e {
        IntExpr::Lit(v) => (itag::LIT, lit(tc, *v)),
        IntExpr::Arg(i) => (itag::ARG, *i as u32),
        IntExpr::Cell(c) => (itag::CELL, c.0),
    }
}

/// Packs a duration expression into `(tag, operand)`.
fn pack_dur(tc: &mut ThreadedCode, e: &DurExpr) -> (u8, u32) {
    match e {
        DurExpr::Nanos(n) => (dtag::LIT, lit(tc, *n as i64)),
        DurExpr::Arg(i) => (dtag::ARG, *i as u32),
    }
}

/// Flattens a condition to its base variant, polarity-folded `Not`s
/// included, writing tag and operands into the op.
fn pack_cond(tc: &mut ThreadedCode, op: &mut Op, e: &CondExpr) {
    let mut neg = 0u8;
    let mut cur = e;
    while let CondExpr::Not(inner) = cur {
        neg ^= COND_NEGATE;
        cur = inner;
    }
    match cur {
        CondExpr::Konst(v) => {
            op.t = cond::KONST | neg;
            op.b = *v as u32;
        }
        CondExpr::ArgFlag(i) => {
            op.t = cond::ARG_FLAG | neg;
            op.b = *i as u32;
        }
        CondExpr::ArgIntLt(i, k) => {
            op.t = cond::ARG_INT_LT | neg;
            op.b = *i as u32;
            op.c = lit(tc, *k);
        }
        CondExpr::CellEq(c, k) => {
            op.t = cond::CELL_EQ | neg;
            op.b = c.0;
            op.c = lit(tc, *k);
        }
        CondExpr::CellLt(c, k) => {
            op.t = cond::CELL_LT | neg;
            op.b = c.0;
            op.c = lit(tc, *k);
        }
        CondExpr::CellGe(c, k) => {
            op.t = cond::CELL_GE | neg;
            op.b = c.0;
            op.c = lit(tc, *k);
        }
        CondExpr::ParamEqField(i, f) => {
            op.t = cond::PARAM_EQ_FIELD | neg;
            op.b = *i as u32;
            op.c = f.0;
        }
        CondExpr::Not(_) => unreachable!("Not chain flattened above"),
    }
}

/// Appends call arguments to the pool, returning the `(start, len)`
/// range.
fn pack_args(tc: &mut ThreadedCode, args: &[ArgExpr]) -> (u32, u32) {
    let start = tc.arg_pool.len() as u32;
    tc.arg_pool.extend_from_slice(args);
    (start, args.len() as u32)
}

/// Lowers one bytecode instruction to one op (1:1 — the fusion pass runs
/// afterwards, in place). `entry` rebases the instruction's
/// method-relative jump targets to absolute pcs.
fn lower_instr(instr: &Instr, entry: u32, tc: &mut ThreadedCode) -> Op {
    match instr {
        Instr::Compute(d) => {
            let mut op = Op::new(OpCode::Compute);
            (op.t, op.a) = pack_dur(tc, d);
            op
        }
        Instr::Lock { sync_id, param } => {
            let mut op = Op::new(OpCode::Lock);
            op.a = sync_id.0;
            pack_mutex(&mut op, param);
            op
        }
        Instr::Unlock { sync_id } => {
            let mut op = Op::new(OpCode::Unlock);
            op.a = sync_id.0;
            op
        }
        Instr::Wait(param) => {
            let mut op = Op::new(OpCode::Wait);
            pack_mutex(&mut op, param);
            op
        }
        Instr::Notify { param, all } => {
            let mut op = Op::new(if *all {
                OpCode::NotifyAll
            } else {
                OpCode::NotifyOne
            });
            pack_mutex(&mut op, param);
            op
        }
        Instr::Nested { service, dur } => {
            let mut op = Op::new(OpCode::Nested);
            op.a = service.0;
            (op.t, op.b) = pack_dur(tc, dur);
            op
        }
        Instr::LockInfo { sync_id, param } => {
            let mut op = Op::new(OpCode::LockInfo);
            op.a = sync_id.0;
            pack_mutex(&mut op, param);
            op
        }
        Instr::IgnoreSync { sync_id } => {
            let mut op = Op::new(OpCode::IgnoreSync);
            op.a = sync_id.0;
            op
        }
        Instr::Update { cell, delta } => {
            let mut op = Op::new(OpCode::Update);
            op.a = cell.0;
            (op.t, op.b) = pack_int(tc, delta);
            op
        }
        Instr::UpdateIndexed {
            base,
            len,
            index_arg,
            delta,
        } => {
            let mut op = Op::new(OpCode::UpdateIndexed);
            op.a = *base;
            op.b = *len;
            op.sa = u16::try_from(*index_arg).expect("indexed-update argument beyond u16 range");
            (op.t, op.c) = pack_int(tc, delta);
            op
        }
        Instr::SetCell { cell, value } => {
            let mut op = Op::new(OpCode::SetCell);
            op.a = cell.0;
            (op.t, op.b) = pack_int(tc, value);
            op
        }
        Instr::Assign { local, expr } => {
            let mut op = Op::new(OpCode::Assign);
            op.a = local.0;
            pack_mutex(&mut op, expr);
            op
        }
        Instr::BranchIfFalse { cond, target } => {
            let mut op = Op::new(OpCode::BranchIfFalse);
            op.a = entry + *target as u32;
            pack_cond(tc, &mut op, cond);
            op
        }
        Instr::Jump(target) => {
            let mut op = Op::new(OpCode::Jump);
            op.a = entry + *target as u32;
            op
        }
        Instr::LoopInit { slot, count } => {
            let mut op = Op::new(OpCode::LoopInit);
            op.sa = *slot;
            match count {
                CountExpr::Lit(n) => {
                    op.t = ctag::LIT;
                    op.a = *n;
                }
                CountExpr::Arg(i) => {
                    op.t = ctag::ARG;
                    op.a = *i as u32;
                }
            }
            op
        }
        Instr::LoopTest { slot, exit } => {
            let mut op = Op::new(OpCode::LoopTest);
            op.sa = *slot;
            op.a = entry + *exit as u32;
            op
        }
        Instr::Call { method, args } => {
            let mut op = Op::new(OpCode::Call);
            op.a = method.0;
            (op.b, op.c) = pack_args(tc, args);
            op
        }
        Instr::CallVirtual {
            candidates,
            selector,
            args,
            ..
        } => {
            let cand_start = tc.cand_pool.len() as u32;
            tc.cand_pool.extend_from_slice(candidates);
            let (sel_tag, sel_op) = pack_int(tc, selector);
            let (args_start, args_len) = pack_args(tc, args);
            let spec = VCallSpec {
                cand_start,
                cand_len: candidates.len() as u32,
                sel_tag,
                sel_op,
                args_start,
                args_len,
            };
            let mut op = Op::new(OpCode::CallVirtual);
            op.a = tc.vcalls.len() as u32;
            tc.vcalls.push(spec);
            op
        }
        Instr::Ret => Op::new(OpCode::Ret),
    }
}

/// The peephole pass: rewrites fusable adjacent pairs in place. The
/// carrier (second op) is preserved untouched, so no pc shifts and no
/// target remapping.
fn fuse_pairs(tc: &mut ThreadedCode, methods: &[CompiledMethod]) {
    // Absolute pcs that are jump targets or method entries: a carrier at
    // such a pc is reachable on its own and must stay unfused.
    let mut is_target = vec![false; tc.ops.len() + 1];
    for &e in &tc.entries {
        is_target[e as usize] = true;
    }
    for op in &tc.ops {
        match op.code {
            OpCode::BranchIfFalse | OpCode::Jump | OpCode::LoopTest => {
                is_target[op.a as usize] = true;
            }
            _ => {}
        }
    }
    for (mi, m) in methods.iter().enumerate() {
        let start = tc.entries[mi] as usize;
        let end = start + m.code.len();
        let mut pc = start;
        while pc + 1 < end {
            if is_target[pc + 1] {
                pc += 1;
                continue;
            }
            let pair = (tc.ops[pc].code, tc.ops[pc + 1].code);
            let fused = match pair {
                (OpCode::Update, OpCode::Unlock) => Some(OpCode::UpdateUnlock),
                (OpCode::UpdateIndexed, OpCode::Unlock) => Some(OpCode::UpdateIndexedUnlock),
                (OpCode::SetCell, OpCode::Unlock) => Some(OpCode::SetCellUnlock),
                (OpCode::BranchIfFalse, OpCode::Compute) => Some(OpCode::BrFalseCompute),
                (OpCode::BranchIfFalse, OpCode::Nested) => Some(OpCode::BrFalseNested),
                _ => None,
            };
            match fused {
                Some(code) => {
                    debug_assert!(!tc.ops[pc].code.emits_action(), "fused first op internal");
                    tc.ops[pc].code = code;
                    tc.fused_pairs += 1;
                    pc += 2;
                }
                None => pc += 1,
            }
        }
    }
}

/// The sequence of action-emitting opcodes of one method, with fused
/// superinstructions expanded back to their constituent emission points.
/// Fusion must preserve this profile exactly — [`crate::compile::compile`]
/// and `dmt-analysis`' fusion report both check it.
pub fn action_profile(tc: &ThreadedCode, method: usize, len: usize) -> Vec<OpCode> {
    let start = tc.entries[method] as usize;
    let mut profile = Vec::new();
    let mut pc = start;
    while pc < start + len {
        match tc.ops[pc].code {
            OpCode::UpdateUnlock | OpCode::UpdateIndexedUnlock | OpCode::SetCellUnlock => {
                // Internal first half; the carried Unlock at `pc + 1` is
                // the emission point (skipped below — it must not count
                // twice).
                profile.push(OpCode::Unlock);
                pc += 1;
            }
            OpCode::BrFalseCompute => {
                profile.push(OpCode::Compute);
                pc += 1;
            }
            OpCode::BrFalseNested => {
                profile.push(OpCode::Nested);
                pc += 1;
            }
            c => {
                if c.emits_action() {
                    profile.push(c);
                }
            }
        }
        pc += 1;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Method, ObjectImpl, Stmt};
    use crate::compile::{compile, compile_unfused};
    use crate::ids::{CellId, MutexId, SyncId};

    fn obj(body: Vec<Stmt>) -> ObjectImpl {
        ObjectImpl {
            name: "T".into(),
            n_cells: 4,
            n_fields: 1,
            methods: vec![Method {
                name: "m".into(),
                arity: 2,
                n_locals: 1,
                public: true,
                is_final: true,
                body,
            }],
        }
    }

    fn sync_update() -> Vec<Stmt> {
        vec![Stmt::Sync {
            sync_id: SyncId::new(0),
            param: MutexExpr::Konst(MutexId::new(7)),
            body: vec![Stmt::Update {
                cell: CellId::new(0),
                delta: IntExpr::Lit(1),
            }],
        }]
    }

    #[test]
    fn op_word_stays_dense() {
        assert!(
            std::mem::size_of::<Op>() <= 20,
            "op word grew past 20 bytes: {}",
            std::mem::size_of::<Op>()
        );
    }

    #[test]
    fn lowering_is_one_to_one_unfused() {
        let c = compile_unfused(&obj(sync_update()));
        assert_eq!(c.flat.fused_pairs, 0);
        assert_eq!(c.flat.ops.len(), c.methods[0].code.len());
        // Lock, Update, Unlock, Ret.
        assert_eq!(c.flat.ops[0].code, OpCode::Lock);
        assert_eq!(c.flat.ops[1].code, OpCode::Update);
        assert_eq!(c.flat.ops[2].code, OpCode::Unlock);
        assert_eq!(c.flat.ops[3].code, OpCode::Ret);
    }

    #[test]
    fn update_unlock_fuses() {
        let c = compile(&obj(sync_update()));
        assert_eq!(c.flat.fused_pairs, 1);
        assert_eq!(c.flat.ops[1].code, OpCode::UpdateUnlock);
        // Carrier preserved for operand access.
        assert_eq!(c.flat.ops[2].code, OpCode::Unlock);
    }

    #[test]
    fn fusion_preserves_action_profile() {
        let bodies = vec![
            sync_update(),
            vec![Stmt::If {
                cond: CondExpr::ArgFlag(0),
                then_branch: vec![Stmt::Compute(DurExpr::millis(1))],
                else_branch: vec![Stmt::Compute(DurExpr::millis(2))],
            }],
        ];
        for body in bodies {
            let o = obj(body);
            let fused = compile(&o);
            let plain = compile_unfused(&o);
            let len = o.methods[0].body.len(); // not exact op count; use code len
            let _ = len;
            let n = fused.methods[0].code.len();
            assert_eq!(
                action_profile(&fused.flat, 0, n),
                action_profile(&plain.flat, 0, n),
                "fusion changed the emission profile"
            );
        }
    }

    #[test]
    fn jump_target_carrier_stays_unfused() {
        // while (c0 < 1) { update } — loop back-edge targets the branch;
        // the Update before Unlock... build a shape where the would-be
        // carrier is a jump target: if (f) {} update; — branch target is
        // the Update, so a preceding pair ending at it must not fuse.
        let body = vec![
            Stmt::Sync {
                sync_id: SyncId::new(0),
                param: MutexExpr::This,
                body: vec![],
            },
            Stmt::While {
                cond: CondExpr::CellLt(CellId::new(0), 1),
                body: vec![Stmt::Update {
                    cell: CellId::new(0),
                    delta: IntExpr::Lit(1),
                }],
            },
        ];
        let c = compile(&obj(body));
        // Lock(0) Unlock(1) BrFalse(2→5) Update(3) Jump(4→2) Ret(5):
        // Update+?? — next is Jump, not fusable anyway; key assertion is
        // the branch at 2 (a jump target) never became a carrier.
        assert_eq!(c.flat.ops[2].code, OpCode::BranchIfFalse);
    }

    #[test]
    fn entries_index_concatenated_methods() {
        let o = ObjectImpl {
            name: "T".into(),
            n_cells: 0,
            n_fields: 0,
            methods: vec![
                Method {
                    name: "a".into(),
                    arity: 0,
                    n_locals: 0,
                    public: true,
                    is_final: true,
                    body: vec![Stmt::Compute(DurExpr::millis(1))],
                },
                Method {
                    name: "b".into(),
                    arity: 0,
                    n_locals: 0,
                    public: true,
                    is_final: true,
                    body: vec![],
                },
            ],
        };
        let c = compile(&o);
        assert_eq!(c.flat.entries, vec![0, 2]); // a: Compute, Ret; b: Ret
        assert_eq!(c.flat.ops[2].code, OpCode::Ret);
    }

    #[test]
    fn literals_are_interned() {
        let body = vec![
            Stmt::Compute(DurExpr::millis(1)),
            Stmt::Compute(DurExpr::millis(1)),
        ];
        let c = compile(&obj(body));
        assert_eq!(c.flat.lits.len(), 1);
    }
}
