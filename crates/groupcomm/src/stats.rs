//! Traffic accounting — the raw material for the paper's §3.5 remark
//! that LSA "poses a high load on the network caused by the need for
//! frequent broadcast communication".

/// Message counters for one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages submitted for ordering (requests, replies, control).
    pub submissions: u64,
    /// Point-to-point legs of sequencer broadcasts.
    pub broadcast_legs: u64,
    /// In-order deliveries performed at nodes.
    pub deliveries: u64,
    /// Duplicate arrivals suppressed by at-most-once delivery (already
    /// delivered or already buffered). Zero on a well-behaved network;
    /// positive under the duplicate-delivery adversary.
    pub dup_dropped: u64,
    /// Out-of-order arrivals parked in a hold-back buffer before their
    /// predecessors arrived (a reorder-pressure measure).
    pub held_back: u64,
}

impl NetStats {
    /// Total simulated message transmissions.
    pub fn total_legs(&self) -> u64 {
        self.submissions + self.broadcast_legs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_legs_adds_up() {
        let s = NetStats {
            submissions: 3,
            broadcast_legs: 9,
            deliveries: 9,
            ..NetStats::default()
        };
        assert_eq!(s.total_legs(), 12);
    }
}
