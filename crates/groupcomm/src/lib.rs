//! # dmt-groupcomm — simulated total-order group communication
//!
//! The paper's system model requires that "each replica receives all
//! messages in a total order" through a group communication system
//! (FTflex used the consensus-based GCS of Reiser et al. \[10\]). We model
//! that service as a *reliable sequencer*: every submission travels to
//! the sequencer (one-way latency + jitter), receives the next sequence
//! number, and is broadcast to every live node (per-link latency +
//! jitter). Each node holds back out-of-order arrivals and delivers
//! strictly by sequence number, so all nodes see the same stream — the
//! property every deterministic scheduler in `dmt-core` builds on.
//!
//! The consensus protocol itself is abstracted away (the sequencer never
//! fails); *replica* failures — what the LSA failover experiment needs —
//! are modelled by [`GroupComm::kill`], which stops deliveries to the
//! dead node. Latency draws are deterministic per seed, so experiments
//! replay bit-exactly.

pub mod net;
pub mod stats;

pub use net::{Delivery, GroupComm, NetConfig, NodeId, Sequenced};
pub use stats::NetStats;
