//! # dmt-groupcomm — simulated total-order group communication
//!
//! The paper's system model requires that "each replica receives all
//! messages in a total order" through a group communication system
//! (FTflex used the consensus-based GCS of Reiser et al. \[10\]). We model
//! that service as a *reliable sequencer*: every submission travels to
//! the sequencer (one-way latency + jitter), receives the next sequence
//! number, and is broadcast to every live node (per-link latency +
//! jitter). Each node holds back out-of-order arrivals and delivers
//! strictly by sequence number, so all nodes see the same stream — the
//! property every deterministic scheduler in `dmt-core` builds on.
//!
//! ## Replication roles
//!
//! * **Sequencer** — the totally-ordered broadcast primitive itself. It is
//!   abstracted as reliable (the consensus protocol of the underlying GCS
//!   never fails in our model); its only job is stamping submissions with
//!   consecutive sequence numbers and fanning them out to live nodes.
//! * **Replica nodes** — the consumers. Each holds back out-of-order
//!   arrivals and delivers strictly by sequence number, with *at-most-once*
//!   semantics: duplicate arrivals are counted ([`NetStats::dup_dropped`])
//!   and suppressed, because the deterministic schedulers above assume
//!   each ordered message spawns exactly one request thread.
//!
//! ## Failure model hooks (DESIGN.md §11)
//!
//! *Replica* failures — crash/recovery, LSA failover — are modelled by
//! [`GroupComm::kill`] (fences the node off the broadcast) and
//! [`GroupComm::revive`] (re-admits it at an explicit sequence position;
//! the engine pairs this with a passive-replication state transfer since
//! messages sequenced during the outage were never fanned out to the dead
//! node). [`GroupComm::set_node_latency`] builds WAN/LAN mixed groups, and
//! [`GroupComm::set_dedup`] deliberately breaks at-most-once delivery so
//! the resilience suite can prove the determinism checker catches
//! non-idempotent duplicate delivery. Latency draws are deterministic per
//! seed — one RNG draw per hop regardless of overrides — so experiments
//! replay bit-exactly.

pub mod net;
pub mod stats;

pub use net::{Delivery, GroupComm, NetConfig, NodeId, Sequenced};
pub use stats::NetStats;
