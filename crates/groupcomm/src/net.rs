//! The sequencer-based atomic broadcast model.

use crate::stats::NetStats;
use dmt_sim::{SimDuration, SplitMix64};
use std::collections::BTreeMap;
use std::fmt;

/// A node of the group (a replica host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    pub const fn new(v: u32) -> Self {
        NodeId(v)
    }
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Latency model of the (local or wide area) network.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Base one-way latency of any hop (node↔sequencer, sequencer↔node).
    pub one_way: SimDuration,
    /// Multiplicative jitter: the actual latency is
    /// `one_way * (1 + jitter * u)` with `u` uniform in `[0, 1)`.
    pub jitter: f64,
}

impl NetConfig {
    /// The paper's evaluation setting: clients and replicas in one LAN.
    pub fn lan() -> Self {
        NetConfig {
            one_way: SimDuration::from_micros(250),
            jitter: 0.4,
        }
    }

    /// A WAN profile for the §3.5 claim that LSA's chatter hurts there.
    pub fn wan(one_way_ms: u64) -> Self {
        NetConfig {
            one_way: SimDuration::from_millis(one_way_ms),
            jitter: 0.2,
        }
    }
}

/// A message stamped with its position in the total order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sequenced<M> {
    pub seq: u64,
    pub msg: M,
}

/// An in-order delivery at a node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery<M> {
    pub node: NodeId,
    pub seq: u64,
    pub msg: M,
}

struct NodeState<M> {
    alive: bool,
    next_deliver: u64,
    /// Out-of-order arrivals held back until their predecessors arrive.
    reorder: BTreeMap<u64, M>,
    /// Per-node base one-way latency override (WAN/LAN mixed groups);
    /// `None` uses [`NetConfig::one_way`].
    one_way_override: Option<SimDuration>,
}

/// The group communication service. The caller (the simulation engine)
/// owns the clock: methods return *delays*, the caller schedules events.
///
/// Failure model hooks (DESIGN.md §11): [`GroupComm::kill`] fences a
/// node off the broadcast, [`GroupComm::revive`] re-admits it at an
/// explicit sequence position (the engine pairs this with a state
/// transfer), [`GroupComm::set_node_latency`] builds WAN/LAN mixed
/// groups, and [`GroupComm::set_dedup`] disables at-most-once delivery
/// to demonstrate that the determinism checker catches non-idempotent
/// duplicate delivery.
pub struct GroupComm<M> {
    cfg: NetConfig,
    rng: SplitMix64,
    next_seq: u64,
    nodes: Vec<NodeState<M>>,
    stats: NetStats,
    /// At-most-once delivery (the default). When disabled, duplicate
    /// arrivals of an already-delivered sequence number are re-delivered —
    /// a deliberately broken mode for adversarial testing.
    dedup: bool,
    /// Latest sequencer-arrival instant per FIFO source, sorted by
    /// source id. Source ids are few and reused (replica indices plus a
    /// handful of synthetic client/remote ids), so a sorted vec with
    /// binary search beats a tree map on the submit hot path.
    fifo_horizon: Vec<(u64, dmt_sim::SimTime)>,
}

impl<M: Clone> GroupComm<M> {
    pub fn new(n_nodes: usize, cfg: NetConfig, seed: u64) -> Self {
        GroupComm {
            cfg,
            rng: SplitMix64::new(seed),
            next_seq: 0,
            nodes: (0..n_nodes)
                .map(|_| NodeState {
                    alive: true,
                    next_deliver: 0,
                    reorder: BTreeMap::new(),
                    one_way_override: None,
                })
                .collect(),
            stats: NetStats::default(),
            dedup: true,
            fifo_horizon: Vec::new(),
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    /// Marks a node failed: no further deliveries reach it.
    pub fn kill(&mut self, node: NodeId) {
        self.nodes[node.index()].alive = false;
        self.nodes[node.index()].reorder.clear();
    }

    /// Re-admits a dead node to the broadcast, resuming delivery at
    /// `next_deliver`. Messages sequenced while the node was dead were
    /// never fanned out to it, so the caller must position `next_deliver`
    /// past the gap — the engine's recovery protocol passes
    /// [`GroupComm::sequenced_count`] and transfers the missed state
    /// out-of-band (passive-replication catch-up). Panics if the node is
    /// still alive or if `next_deliver` would re-open the unfillable gap.
    pub fn revive(&mut self, node: NodeId, next_deliver: u64) {
        let st = &mut self.nodes[node.index()];
        assert!(!st.alive, "revive of live node {node:?}");
        assert!(
            next_deliver >= st.next_deliver,
            "revive would rewind {node:?} from {} to {next_deliver}",
            st.next_deliver
        );
        st.alive = true;
        st.next_deliver = next_deliver;
        st.reorder.clear();
    }

    /// Overrides the base one-way latency of every hop that terminates at
    /// `node` (WAN/LAN mixed groups: e.g. two co-located replicas plus one
    /// remote). Jitter still applies multiplicatively. `None` restores the
    /// group-wide [`NetConfig::one_way`].
    pub fn set_node_latency(&mut self, node: NodeId, one_way: Option<SimDuration>) {
        self.nodes[node.index()].one_way_override = one_way;
    }

    /// Enables or disables at-most-once delivery (enabled by default).
    /// Disabling it models a faulty transport that re-delivers duplicates;
    /// the determinism checker is expected to flag the resulting
    /// divergence (see `tests_resilience`).
    pub fn set_dedup(&mut self, dedup: bool) {
        self.dedup = dedup;
    }

    fn hop_latency(&mut self) -> SimDuration {
        let u = self.rng.next_f64();
        let ns = self.cfg.one_way.as_nanos() as f64 * (1.0 + self.cfg.jitter * u);
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// Like [`GroupComm::hop_latency`] but for a hop terminating at a
    /// specific node, honouring its latency override. Consumes exactly one
    /// RNG draw either way, so enabling overrides on some nodes never
    /// perturbs the latency stream of the others.
    fn hop_latency_to(&mut self, node_idx: usize) -> SimDuration {
        let base = self.nodes[node_idx]
            .one_way_override
            .unwrap_or(self.cfg.one_way);
        let u = self.rng.next_f64();
        let ns = base.as_nanos() as f64 * (1.0 + self.cfg.jitter * u);
        SimDuration::from_nanos(ns.round() as u64)
    }

    /// A submission leaves a node (or an external client) for the
    /// sequencer. Returns the transit delay; the caller schedules
    /// [`GroupComm::sequence`] after it.
    pub fn submit_delay(&mut self) -> SimDuration {
        self.stats.submissions += 1;
        self.hop_latency()
    }

    /// Like [`GroupComm::submit_delay`] but with per-source FIFO: two
    /// submissions from the same `source` never overtake each other on
    /// the way to the sequencer (the FIFO-total order real group
    /// communication systems provide — LSA's numbered announcements
    /// depend on it).
    pub fn submit_delay_fifo(&mut self, source: u64, now: dmt_sim::SimTime) -> SimDuration {
        self.stats.submissions += 1;
        let mut arrival = now + self.hop_latency();
        match self.fifo_horizon.binary_search_by_key(&source, |e| e.0) {
            Ok(i) => {
                let last = self.fifo_horizon[i].1;
                if arrival <= last {
                    arrival = last + SimDuration::from_nanos(1);
                }
                self.fifo_horizon[i].1 = arrival;
            }
            Err(i) => self.fifo_horizon.insert(i, (source, arrival)),
        }
        arrival - now
    }

    /// The sequencer stamps `msg` and broadcasts it: returns the stamped
    /// message and per-node arrival delays (dead nodes excluded). The
    /// caller schedules an [`GroupComm::arrive`] per entry.
    pub fn sequence(&mut self, msg: M) -> (Sequenced<M>, Vec<(NodeId, SimDuration)>) {
        let mut hops = Vec::with_capacity(self.nodes.len());
        let sm = self.sequence_into(msg, &mut hops);
        (sm, hops)
    }

    /// Allocation-free [`GroupComm::sequence`]: the per-node arrival
    /// delays land in the caller-owned `hops` buffer (cleared first), so
    /// an engine reusing one buffer pays nothing per broadcast.
    pub fn sequence_into(&mut self, msg: M, hops: &mut Vec<(NodeId, SimDuration)>) -> Sequenced<M> {
        hops.clear();
        let seq = self.next_seq;
        self.next_seq += 1;
        for i in 0..self.nodes.len() {
            if self.nodes[i].alive {
                let d = self.hop_latency_to(i);
                self.stats.broadcast_legs += 1;
                hops.push((NodeId::new(i as u32), d));
            }
        }
        Sequenced { seq, msg }
    }

    /// A stamped message physically arrives at `node`. Returns the batch
    /// of messages now deliverable *in order* (possibly empty while a
    /// predecessor is still in flight, possibly several if this arrival
    /// plugged a gap). Arrivals at dead nodes are dropped.
    pub fn arrive(&mut self, node: NodeId, sm: Sequenced<M>) -> Vec<Delivery<M>> {
        let mut out = Vec::new();
        self.arrive_into(node, sm, &mut out);
        out
    }

    /// Allocation-free [`GroupComm::arrive`]: deliveries land in the
    /// caller-owned `out` buffer (cleared first). An in-order arrival —
    /// the steady state — is delivered directly, never touching the
    /// reorder map; only genuine gaps buffer.
    ///
    /// Delivery is at-most-once: a duplicate arrival (sequence number
    /// already delivered, or already waiting in the hold-back buffer) is
    /// counted in [`NetStats::dup_dropped`] and suppressed — unless
    /// [`GroupComm::set_dedup`]`(false)` put the transport in its broken
    /// mode, in which case an already-delivered message is delivered
    /// *again* (the adversarial case the determinism checker must catch).
    pub fn arrive_into(&mut self, node: NodeId, sm: Sequenced<M>, out: &mut Vec<Delivery<M>>) {
        out.clear();
        let st = &mut self.nodes[node.index()];
        if !st.alive {
            return;
        }
        if sm.seq < st.next_deliver {
            if self.dedup {
                self.stats.dup_dropped += 1;
                return;
            }
            // Broken-dedup mode: re-deliver the duplicate out of order.
            out.push(Delivery {
                node,
                seq: sm.seq,
                msg: sm.msg,
            });
            self.stats.deliveries += 1;
            return;
        }
        if sm.seq > st.next_deliver {
            if st.reorder.contains_key(&sm.seq) {
                self.stats.dup_dropped += 1;
                return;
            }
            st.reorder.insert(sm.seq, sm.msg);
            self.stats.held_back += 1;
            return;
        }
        out.push(Delivery {
            node,
            seq: sm.seq,
            msg: sm.msg,
        });
        st.next_deliver += 1;
        self.stats.deliveries += 1;
        while let Some(msg) = st.reorder.remove(&st.next_deliver) {
            out.push(Delivery {
                node,
                seq: st.next_deliver,
                msg,
            });
            st.next_deliver += 1;
            self.stats.deliveries += 1;
        }
    }

    /// How many messages `node` has delivered so far.
    pub fn delivered_count(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].next_deliver
    }

    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Total messages sequenced so far.
    pub fn sequenced_count(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gc(n: usize, seed: u64) -> GroupComm<&'static str> {
        GroupComm::new(n, NetConfig::lan(), seed)
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut g = gc(3, 1);
        let (a, hops) = g.sequence("a");
        let (b, _) = g.sequence("b");
        assert_eq!(a.seq, 0);
        assert_eq!(b.seq, 1);
        assert_eq!(hops.len(), 3);
    }

    #[test]
    fn in_order_arrival_delivers_immediately() {
        let mut g = gc(2, 1);
        let (a, _) = g.sequence("a");
        let out = g.arrive(NodeId::new(0), a);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, "a");
        assert_eq!(out[0].seq, 0);
    }

    #[test]
    fn out_of_order_arrival_is_held_back() {
        let mut g = gc(1, 1);
        let (a, _) = g.sequence("a");
        let (b, _) = g.sequence("b");
        let n = NodeId::new(0);
        assert!(g.arrive(n, b).is_empty(), "seq 1 must wait for seq 0");
        let out = g.arrive(n, a);
        let msgs: Vec<_> = out.iter().map(|d| d.msg).collect();
        assert_eq!(msgs, vec!["a", "b"], "gap plugged: both deliver in order");
        assert_eq!(g.delivered_count(n), 2);
    }

    #[test]
    fn long_gap_release() {
        let mut g = gc(1, 1);
        let stamped: Vec<_> = (0..5)
            .map(|i| g.sequence(["a", "b", "c", "d", "e"][i]).0)
            .collect();
        let n = NodeId::new(0);
        for sm in stamped.iter().skip(1).rev() {
            assert!(g.arrive(n, sm.clone()).is_empty());
        }
        let out = g.arrive(n, stamped[0].clone());
        assert_eq!(out.len(), 5);
        let seqs: Vec<u64> = out.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dead_node_gets_nothing() {
        let mut g = gc(2, 1);
        g.kill(NodeId::new(1));
        let (a, hops) = g.sequence("a");
        assert_eq!(hops.len(), 1, "broadcast skips dead nodes");
        assert_eq!(hops[0].0, NodeId::new(0));
        assert!(g.arrive(NodeId::new(1), a).is_empty());
        assert!(!g.is_alive(NodeId::new(1)));
    }

    #[test]
    fn latency_is_positive_and_jittered() {
        let mut g = gc(1, 7);
        let base = NetConfig::lan().one_way;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let d = g.submit_delay();
            assert!(d >= base);
            assert!(d <= base + SimDuration::from_nanos((base.as_nanos() as f64 * 0.4) as u64 + 1));
            distinct.insert(d.as_nanos());
        }
        assert!(distinct.len() > 10, "jitter should vary latencies");
    }

    #[test]
    fn same_seed_same_latencies() {
        let mut a = gc(3, 42);
        let mut b = gc(3, 42);
        for _ in 0..20 {
            assert_eq!(a.submit_delay(), b.submit_delay());
            let (_, ha) = a.sequence("x");
            let (_, hb) = b.sequence("x");
            assert_eq!(ha, hb);
        }
    }

    #[test]
    fn stats_count_traffic() {
        let mut g = gc(3, 1);
        g.submit_delay();
        let (a, _) = g.sequence("a");
        g.arrive(NodeId::new(0), a);
        assert_eq!(g.stats().submissions, 1);
        assert_eq!(g.stats().broadcast_legs, 3);
        assert_eq!(g.stats().deliveries, 1);
        assert_eq!(g.sequenced_count(), 1);
    }

    #[test]
    fn duplicate_delivery_is_dropped_and_counted() {
        let mut g = gc(1, 1);
        let (a, _) = g.sequence("a");
        let n = NodeId::new(0);
        assert_eq!(g.arrive(n, a.clone()).len(), 1);
        assert!(g.arrive(n, a).is_empty(), "duplicate must be suppressed");
        assert_eq!(g.stats().dup_dropped, 1);
        assert_eq!(g.stats().deliveries, 1);
        assert_eq!(g.delivered_count(n), 1);
    }

    #[test]
    fn duplicate_of_held_back_message_is_dropped() {
        let mut g = gc(1, 1);
        let (_a, _) = g.sequence("a");
        let (b, _) = g.sequence("b");
        let n = NodeId::new(0);
        assert!(g.arrive(n, b.clone()).is_empty(), "gap: held back");
        assert_eq!(g.stats().held_back, 1);
        assert!(g.arrive(n, b).is_empty(), "duplicate of buffered msg");
        assert_eq!(g.stats().dup_dropped, 1);
        assert_eq!(g.stats().held_back, 1, "second copy is not re-buffered");
    }

    #[test]
    fn broken_dedup_redelivers_duplicates() {
        let mut g = gc(1, 1);
        g.set_dedup(false);
        let (a, _) = g.sequence("a");
        let n = NodeId::new(0);
        assert_eq!(g.arrive(n, a.clone()).len(), 1);
        let dup = g.arrive(n, a);
        assert_eq!(dup.len(), 1, "broken transport re-delivers");
        assert_eq!(dup[0].seq, 0);
        assert_eq!(g.stats().deliveries, 2);
        assert_eq!(g.stats().dup_dropped, 0);
    }

    #[test]
    fn revive_resumes_at_explicit_position() {
        let mut g = gc(2, 1);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        let (a, _) = g.sequence("a");
        g.arrive(n0, a.clone());
        g.arrive(n1, a);
        g.kill(n1);
        // Sequenced while n1 is dead: never fanned out to it.
        let (b, hops) = g.sequence("b");
        assert_eq!(hops.len(), 1);
        g.arrive(n0, b);
        // Recovery: state transfer covers seq 1, delivery resumes at 2.
        g.revive(n1, g.sequenced_count());
        assert!(g.is_alive(n1));
        let (c, hops) = g.sequence("c");
        assert_eq!(hops.len(), 2, "revived node rejoins the broadcast");
        let out = g.arrive(n1, c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].seq, 2);
        assert_eq!(g.delivered_count(n1), 3);
    }

    #[test]
    #[should_panic(expected = "revive of live node")]
    fn revive_of_live_node_panics() {
        let mut g = gc(1, 1);
        g.revive(NodeId::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "revive would rewind")]
    fn revive_cannot_rewind() {
        let mut g = gc(1, 1);
        let n = NodeId::new(0);
        let (a, _) = g.sequence("a");
        g.arrive(n, a);
        g.kill(n);
        g.revive(n, 0);
    }

    #[test]
    fn wan_profile_is_slower() {
        let mut lan: GroupComm<&str> = GroupComm::new(1, NetConfig::lan(), 1);
        let mut wan: GroupComm<&str> = GroupComm::new(1, NetConfig::wan(20), 1);
        assert!(wan.submit_delay() > lan.submit_delay() * 10);
    }

    #[test]
    fn node_latency_override_shapes_only_that_node() {
        let mut g = gc(2, 5);
        let mut g_plain = gc(2, 5);
        g.set_node_latency(NodeId::new(1), Some(SimDuration::from_millis(40)));
        let (_, hops_mixed) = g.sequence("x");
        let (_, hops_plain) = g_plain.sequence("x");
        // Node 0's draw is byte-identical with and without the override on
        // node 1 (one RNG draw per leg either way).
        assert_eq!(hops_mixed[0].1, hops_plain[0].1);
        assert!(
            hops_mixed[1].1 > hops_plain[1].1 * 10,
            "overridden node sees WAN latency"
        );
        // Restoring the override restores the original latency model.
        g.set_node_latency(NodeId::new(1), None);
        let (_, h2) = g.sequence("y");
        let (_, h2p) = g_plain.sequence("y");
        assert_eq!(h2, h2p);
    }
}
