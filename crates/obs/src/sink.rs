//! Streaming trace sinks and the compact binary record codec.
//!
//! The in-memory [`crate::Tracer`] buffer works for runs that fit in
//! RAM; the ROADMAP's 1e5–1e6-client scale does not. This module makes
//! the destination pluggable: a [`TraceSink`] accepts stamped
//! [`TraceRecord`]s one at a time, and three implementations cover the
//! operating points —
//!
//! * [`RingSink`] — a fixed-capacity in-memory ring that keeps the
//!   *latest* records and counts what it overwrote (flight-recorder
//!   mode: bounded memory, the tail of the run survives),
//! * [`FileSink`] — streams the compact binary encoding to disk through
//!   a preallocated buffer (bounded memory, whole run survives; write
//!   errors drop records and are counted rather than panicking),
//! * [`NullSink`] — encodes and discards (`/dev/null`): the cost-model
//!   device for measuring encoding overhead without retention.
//!
//! The codec is a fixed little-endian layout — one tag byte, the
//! virtual-ns stamp, the replica, then a per-variant payload — so the
//! byte stream is a pure function of the record stream: two runs that
//! trace identically encode identically, which is what lets file-backed
//! traces participate in the byte-stability regression suite.
//! [`decode_records`] inverts it exactly (round-trip tested).
//!
//! Steady-state cost discipline matches the rest of the workspace: every
//! sink preallocates at construction and recycles from then on — the
//! `steady_state_alloc` test in dmt-bench holds the ring and null sinks
//! to zero allocations per record.

use crate::trace::{TraceEvent, TraceRecord};
use dmt_core::{Decision, DeferReason, DepthSample, ThreadId};
use dmt_lang::MutexId;

/// Upper bound of one encoded record (tag + stamp + replica + payload).
/// Sinks use it to size flush headroom so a record never reallocates.
pub const MAX_RECORD_BYTES: usize = 32;

/// Default capacity of the engine's bounded in-memory trace buffer
/// (records, not bytes). Beyond it, records are dropped and counted in
/// the `trace.dropped` metric instead of growing without bound.
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

/// Where a traced run's records go. Clonable configuration (the engine
/// config must stay `Clone`); the tracer builds the actual sink from it.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceSinkSpec {
    /// In-memory vector capped at `cap` records; overflow is dropped
    /// and counted. The classic `RunResult::trace_records` path.
    Buffer { cap: usize },
    /// Fixed-capacity ring keeping the latest `cap` records
    /// (flight-recorder mode); overwrites are counted as drops.
    Ring { cap: usize },
    /// Stream the binary encoding to `path` through a `buf_bytes`
    /// buffer. `RunResult::trace_records` stays empty; the file is the
    /// artifact.
    File { path: String, buf_bytes: usize },
    /// Encode and discard.
    Null,
}

impl Default for TraceSinkSpec {
    fn default() -> Self {
        TraceSinkSpec::Buffer {
            cap: DEFAULT_TRACE_CAP,
        }
    }
}

/// A destination for stamped trace records. Implementations must be
/// allocation-free per accepted record once warm — the disabled-tracing
/// hot path never reaches a sink at all.
pub trait TraceSink: Send {
    /// Offer one record. Sinks that cannot retain or persist it count
    /// it in [`TraceSink::dropped`] instead of failing.
    fn accept(&mut self, rec: &TraceRecord);

    /// Records offered but not retained (ring overwrites, failed file
    /// writes, buffer overflow).
    fn dropped(&self) -> u64;

    /// Records retained or persisted.
    fn written(&self) -> u64;

    /// Flush buffered state (end of run). Default: nothing buffered.
    fn finish(&mut self) {}

    /// Drain retained records back out, oldest first. Sinks that
    /// persist elsewhere (file, null) return nothing.
    fn take_records(&mut self) -> Vec<TraceRecord> {
        Vec::new()
    }
}

// --- codec -----------------------------------------------------------

fn reason_code(r: DeferReason) -> u8 {
    match r {
        DeferReason::MutexBusy => 0,
        DeferReason::OrderGate => 1,
        DeferReason::Barrier => 2,
        DeferReason::Token => 3,
    }
}

fn reason_of(code: u8) -> Option<DeferReason> {
    Some(match code {
        0 => DeferReason::MutexBusy,
        1 => DeferReason::OrderGate,
        2 => DeferReason::Barrier,
        3 => DeferReason::Token,
        _ => return None,
    })
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends the fixed-layout encoding of `rec` to `out`. Never more than
/// [`MAX_RECORD_BYTES`] bytes; does not allocate beyond `out`'s own
/// growth.
pub fn encode_record(rec: &TraceRecord, out: &mut Vec<u8>) {
    let tag_at = out.len();
    out.push(0); // patched below
    push_u64(out, rec.t_ns);
    push_u32(out, rec.replica);
    let tag: u8 = match rec.ev {
        TraceEvent::Sched(d) => {
            match d {
                Decision::Admit { tid } => {
                    out.push(0);
                    push_u32(out, tid.0);
                }
                Decision::AdmitDefer { tid } => {
                    out.push(1);
                    push_u32(out, tid.0);
                }
                Decision::Grant {
                    tid,
                    mutex,
                    from_wait,
                } => {
                    out.push(2);
                    push_u32(out, tid.0);
                    push_u32(out, mutex.index() as u32);
                    out.push(from_wait as u8);
                }
                Decision::Defer { tid, mutex, reason } => {
                    out.push(3);
                    push_u32(out, tid.0);
                    push_u32(out, mutex.index() as u32);
                    out.push(reason_code(reason));
                }
                Decision::Predict {
                    tid,
                    mutex,
                    granted,
                } => {
                    out.push(4);
                    push_u32(out, tid.0);
                    push_u32(out, mutex.index() as u32);
                    out.push(granted as u8);
                }
                Decision::TokenGrant { tid } => {
                    out.push(5);
                    push_u32(out, tid.0);
                }
                Decision::TokenRelease { tid, last_lock } => {
                    out.push(6);
                    push_u32(out, tid.0);
                    out.push(last_lock as u8);
                }
                Decision::Announce { tid, mutex, order } => {
                    out.push(7);
                    push_u32(out, tid.0);
                    push_u32(out, mutex.index() as u32);
                    push_u64(out, order);
                }
                Decision::RoundStart { pool, dummies } => {
                    out.push(8);
                    push_u32(out, pool);
                    push_u32(out, dummies);
                }
            }
            0
        }
        TraceEvent::GcSubmit { source } => {
            push_u64(out, source);
            1
        }
        TraceEvent::GcSequenced { seq } => {
            push_u64(out, seq);
            2
        }
        TraceEvent::GcDeliver { seq } => {
            push_u64(out, seq);
            3
        }
        TraceEvent::RequestArrived { tid, dummy } => {
            push_u32(out, tid.0);
            out.push(dummy as u8);
            4
        }
        TraceEvent::RequestFinished { tid } => {
            push_u32(out, tid.0);
            5
        }
        TraceEvent::RequestReplied { tid } => {
            push_u32(out, tid.0);
            6
        }
        TraceEvent::Depth(d) => {
            push_u32(out, d.admission);
            push_u32(out, d.lock_queued);
            push_u32(out, d.wait_set);
            push_u32(out, d.sched_queue);
            7
        }
        TraceEvent::ReplicaCrashed => 8,
        TraceEvent::ReplicaRecovered { from_seq } => {
            push_u64(out, from_seq);
            9
        }
        TraceEvent::LeaderFailover { new_leader } => {
            push_u32(out, new_leader);
            10
        }
        TraceEvent::MutexReleased { tid, mutex } => {
            push_u32(out, tid.0);
            push_u32(out, mutex.index() as u32);
            11
        }
    };
    out[tag_at] = tag;
}

/// A malformed byte stream (truncated record or unknown tag).
#[derive(Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset of the record that failed to parse.
    pub at: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed trace record at byte {}", self.at)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.bytes.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(s.try_into().unwrap()))
    }
}

fn decode_one(c: &mut Cursor<'_>) -> Option<TraceRecord> {
    let tag = c.u8()?;
    let t_ns = c.u64()?;
    let replica = c.u32()?;
    let tid = |v: u32| ThreadId::new(v);
    let mx = |v: u32| MutexId::new(v);
    let ev = match tag {
        0 => TraceEvent::Sched(match c.u8()? {
            0 => Decision::Admit { tid: tid(c.u32()?) },
            1 => Decision::AdmitDefer { tid: tid(c.u32()?) },
            2 => Decision::Grant {
                tid: tid(c.u32()?),
                mutex: mx(c.u32()?),
                from_wait: c.u8()? != 0,
            },
            3 => Decision::Defer {
                tid: tid(c.u32()?),
                mutex: mx(c.u32()?),
                reason: reason_of(c.u8()?)?,
            },
            4 => Decision::Predict {
                tid: tid(c.u32()?),
                mutex: mx(c.u32()?),
                granted: c.u8()? != 0,
            },
            5 => Decision::TokenGrant { tid: tid(c.u32()?) },
            6 => Decision::TokenRelease {
                tid: tid(c.u32()?),
                last_lock: c.u8()? != 0,
            },
            7 => Decision::Announce {
                tid: tid(c.u32()?),
                mutex: mx(c.u32()?),
                order: c.u64()?,
            },
            8 => Decision::RoundStart {
                pool: c.u32()?,
                dummies: c.u32()?,
            },
            _ => return None,
        }),
        1 => TraceEvent::GcSubmit { source: c.u64()? },
        2 => TraceEvent::GcSequenced { seq: c.u64()? },
        3 => TraceEvent::GcDeliver { seq: c.u64()? },
        4 => TraceEvent::RequestArrived {
            tid: tid(c.u32()?),
            dummy: c.u8()? != 0,
        },
        5 => TraceEvent::RequestFinished { tid: tid(c.u32()?) },
        6 => TraceEvent::RequestReplied { tid: tid(c.u32()?) },
        7 => TraceEvent::Depth(DepthSample {
            admission: c.u32()?,
            lock_queued: c.u32()?,
            wait_set: c.u32()?,
            sched_queue: c.u32()?,
        }),
        8 => TraceEvent::ReplicaCrashed,
        9 => TraceEvent::ReplicaRecovered { from_seq: c.u64()? },
        10 => TraceEvent::LeaderFailover {
            new_leader: c.u32()?,
        },
        11 => TraceEvent::MutexReleased {
            tid: tid(c.u32()?),
            mutex: mx(c.u32()?),
        },
        _ => return None,
    };
    Some(TraceRecord { t_ns, replica, ev })
}

/// Decodes a byte stream produced by [`encode_record`] calls.
pub fn decode_records(bytes: &[u8]) -> Result<Vec<TraceRecord>, DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let mut out = Vec::new();
    while c.pos < bytes.len() {
        let at = c.pos;
        match decode_one(&mut c) {
            Some(r) => out.push(r),
            None => return Err(DecodeError { at }),
        }
    }
    Ok(out)
}

// --- sinks -----------------------------------------------------------

/// Fixed-capacity ring keeping the most recent records. Capacity is
/// allocated once at construction; a full ring overwrites its oldest
/// entry and counts the overwrite as a drop.
pub struct RingSink {
    buf: Vec<TraceRecord>,
    cap: usize,
    /// Next write position once the ring has wrapped.
    head: usize,
    dropped: u64,
    written: u64,
}

impl RingSink {
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingSink {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            dropped: 0,
            written: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn accept(&mut self, rec: &TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(*rec);
        } else {
            self.buf[self.head] = *rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
        self.written += 1;
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records currently resident (the ring retains at most `cap`).
    fn written(&self) -> u64 {
        self.written - self.dropped
    }

    fn take_records(&mut self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }
}

/// Streams encoded records to a file through a preallocated buffer.
/// A failed write marks the sink broken: the buffered records and every
/// later offer are counted as dropped instead of panicking mid-run.
pub struct FileSink {
    file: std::fs::File,
    buf: Vec<u8>,
    /// Flush once the buffer reaches this many bytes.
    watermark: usize,
    /// Records currently encoded in `buf` (for drop accounting).
    buf_records: u64,
    written: u64,
    bytes_written: u64,
    dropped: u64,
    broken: bool,
}

impl FileSink {
    /// Default buffer: 256 KiB.
    pub const DEFAULT_BUF_BYTES: usize = 256 * 1024;

    pub fn create(path: &str, buf_bytes: usize) -> std::io::Result<Self> {
        let watermark = buf_bytes.max(MAX_RECORD_BYTES);
        Ok(FileSink {
            file: std::fs::File::create(path)?,
            // Headroom: `accept` appends one record before checking the
            // watermark, so the buffer never reallocates.
            buf: Vec::with_capacity(watermark + MAX_RECORD_BYTES),
            watermark,
            buf_records: 0,
            written: 0,
            bytes_written: 0,
            dropped: 0,
            broken: false,
        })
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn flush_buf(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        use std::io::Write;
        match self.file.write_all(&self.buf) {
            Ok(()) => {
                self.bytes_written += self.buf.len() as u64;
                self.written += self.buf_records;
            }
            Err(_) => {
                self.dropped += self.buf_records;
                self.broken = true;
            }
        }
        self.buf.clear();
        self.buf_records = 0;
    }
}

impl TraceSink for FileSink {
    fn accept(&mut self, rec: &TraceRecord) {
        if self.broken {
            self.dropped += 1;
            return;
        }
        encode_record(rec, &mut self.buf);
        self.buf_records += 1;
        if self.buf.len() >= self.watermark {
            self.flush_buf();
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn written(&self) -> u64 {
        self.written
    }

    fn finish(&mut self) {
        self.flush_buf();
        use std::io::Write;
        let _ = self.file.flush();
    }
}

/// Encodes into a reusable scratch buffer and discards: the `/dev/null`
/// of trace sinks, pricing the codec without retention or I/O.
pub struct NullSink {
    scratch: Vec<u8>,
    written: u64,
    bytes: u64,
}

impl NullSink {
    pub fn new() -> Self {
        NullSink {
            scratch: Vec::with_capacity(MAX_RECORD_BYTES),
            written: 0,
            bytes: 0,
        }
    }

    /// Total encoded bytes discarded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for NullSink {
    fn default() -> Self {
        NullSink::new()
    }
}

impl TraceSink for NullSink {
    fn accept(&mut self, rec: &TraceRecord) {
        self.scratch.clear();
        encode_record(rec, &mut self.scratch);
        self.bytes += self.scratch.len() as u64;
        self.written += 1;
    }

    fn dropped(&self) -> u64 {
        0
    }

    fn written(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }

    /// One record of every event and decision variant.
    fn all_variants() -> Vec<TraceRecord> {
        let decisions = vec![
            Decision::Admit { tid: t(1) },
            Decision::AdmitDefer { tid: t(2) },
            Decision::Grant {
                tid: t(3),
                mutex: m(4),
                from_wait: true,
            },
            Decision::Defer {
                tid: t(5),
                mutex: m(6),
                reason: DeferReason::OrderGate,
            },
            Decision::Predict {
                tid: t(7),
                mutex: m(8),
                granted: false,
            },
            Decision::TokenGrant { tid: t(9) },
            Decision::TokenRelease {
                tid: t(10),
                last_lock: true,
            },
            Decision::Announce {
                tid: t(11),
                mutex: m(12),
                order: 1 << 40,
            },
            Decision::RoundStart {
                pool: 13,
                dummies: 2,
            },
        ];
        let mut evs: Vec<TraceEvent> = decisions.into_iter().map(TraceEvent::Sched).collect();
        evs.extend([
            TraceEvent::GcSubmit { source: 77 },
            TraceEvent::GcSequenced { seq: 1 },
            TraceEvent::GcDeliver { seq: 1 },
            TraceEvent::RequestArrived {
                tid: t(0),
                dummy: true,
            },
            TraceEvent::RequestFinished { tid: t(0) },
            TraceEvent::RequestReplied { tid: t(0) },
            TraceEvent::Depth(DepthSample {
                admission: 1,
                lock_queued: 2,
                wait_set: 3,
                sched_queue: 4,
            }),
            TraceEvent::ReplicaCrashed,
            TraceEvent::ReplicaRecovered { from_seq: 9 },
            TraceEvent::LeaderFailover { new_leader: 2 },
            TraceEvent::MutexReleased {
                tid: t(6),
                mutex: m(3),
            },
        ]);
        evs.into_iter()
            .enumerate()
            .map(|(i, ev)| TraceRecord {
                t_ns: 1000 + i as u64,
                replica: (i % 3) as u32,
                ev,
            })
            .collect()
    }

    #[test]
    fn codec_round_trips_every_variant() {
        let records = all_variants();
        let mut bytes = Vec::new();
        for r in &records {
            let before = bytes.len();
            encode_record(r, &mut bytes);
            assert!(bytes.len() - before <= MAX_RECORD_BYTES, "{r:?} too long");
        }
        let back = decode_records(&bytes).expect("decode");
        assert_eq!(back, records);
        // Byte-stable: same records, same bytes.
        let mut again = Vec::new();
        for r in &records {
            encode_record(r, &mut again);
        }
        assert_eq!(bytes, again);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut bytes = Vec::new();
        encode_record(&all_variants()[0], &mut bytes);
        let whole = bytes.len();
        bytes.truncate(whole - 1);
        assert_eq!(decode_records(&bytes), Err(DecodeError { at: 0 }));
        assert!(decode_records(&[250, 0, 0]).is_err());
    }

    #[test]
    fn ring_keeps_the_latest_and_counts_overwrites() {
        let mut s = RingSink::new(4);
        let recs = all_variants();
        for r in &recs[..7] {
            s.accept(r);
        }
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.written(), 4);
        let kept = s.take_records();
        assert_eq!(kept, recs[3..7].to_vec(), "ring must keep the tail");
    }

    #[test]
    fn file_sink_persists_the_exact_encoding() {
        let path = std::env::temp_dir().join(format!("dmt_sink_test_{}.bin", std::process::id()));
        let path_s = path.to_str().unwrap();
        let recs = all_variants();
        let mut s = FileSink::create(path_s, 64).expect("create");
        for r in &recs {
            s.accept(r);
        }
        s.finish();
        assert_eq!(s.written(), recs.len() as u64);
        assert_eq!(s.dropped(), 0);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, s.bytes_written());
        assert_eq!(decode_records(&bytes).unwrap(), recs);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn null_sink_counts_without_retaining() {
        let mut s = NullSink::new();
        for r in all_variants() {
            s.accept(&r);
        }
        assert_eq!(s.written(), all_variants().len() as u64);
        assert!(s.bytes() > 0);
        assert!(s.take_records().is_empty());
    }
}
