//! dmt-obs — the unified observability layer.
//!
//! Three concerns, one crate (DESIGN.md §9):
//!
//! * [`registry`] — a metrics registry with dense integer handles for
//!   named counters, gauges, and [`dmt_sim::LogHistogram`]s, plus a
//!   stable, name-sorted [`MetricsSnapshot`] that merges commutatively.
//!   The engine routes its host-side perf counters, the group-comm
//!   traffic counters, and the per-request latency histogram through it,
//!   so every run exports one uniform `name → value` view.
//! * [`trace`] — a structured trace recorder: a preallocated vector of
//!   typed [`TraceRecord`]s (scheduler decisions, request lifecycle,
//!   group-comm legs, queue-depth samples) stamped with virtual-ns time
//!   and replica. Disabled tracing is one predictable branch and zero
//!   allocations: the record closure is never called and the buffer
//!   capacity stays 0 (asserted by tests here and guarded against the
//!   pinned ns/event baseline in dmt-bench).
//! * [`chrome`] — exports a trace to the Chrome `chrome://tracing` /
//!   Perfetto JSON array format for interactive inspection.
//!
//! The crate depends only on dmt-core (decision/depth types) and dmt-sim
//! (histograms, virtual time); schedulers and the simulator never depend
//! on it, so the observer cannot perturb the observed.

pub mod chrome;
pub mod registry;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use registry::{CounterId, GaugeId, HistId, MetricsRegistry, MetricsSnapshot};
pub use trace::{TraceEvent, TraceRecord, Tracer};
