//! dmt-obs — the unified observability layer.
//!
//! Three concerns, one crate (DESIGN.md §9):
//!
//! * [`registry`] — a metrics registry with dense integer handles for
//!   named counters, gauges, and [`dmt_sim::LogHistogram`]s, plus a
//!   stable, name-sorted [`MetricsSnapshot`] that merges commutatively.
//!   The engine routes its host-side perf counters, the group-comm
//!   traffic counters, and the per-request latency histogram through it,
//!   so every run exports one uniform `name → value` view.
//! * [`trace`] — a structured trace recorder: a bounded buffer of typed
//!   [`TraceRecord`]s (scheduler decisions, request lifecycle,
//!   group-comm legs, queue-depth samples, mutex releases) stamped with
//!   virtual-ns time and replica. Disabled tracing is one predictable
//!   branch and zero allocations: the record closure is never called and
//!   the buffer capacity stays 0 (asserted by tests here and guarded
//!   against the pinned ns/event baseline in dmt-bench). Enabled
//!   tracing is bounded too: the buffer caps and counts drops, or a
//!   pluggable [`sink::TraceSink`] streams records out instead.
//! * [`sink`] — the streaming layer: a compact, byte-stable binary
//!   codec for [`TraceRecord`] plus ring / bounded-file / null sinks,
//!   so runs too large to buffer stream to disk with bounded memory.
//! * [`profile`] — folds one replica's Defer/Grant/Release stream into
//!   a per-mutex contention profile (defer counts by reason, wait/hold
//!   histograms, waits-for edges) with a flamegraph-style collapsed
//!   rendering and derived [`dmt_core::ContentionHints`].
//! * [`chrome`] — exports a trace to the Chrome `chrome://tracing` /
//!   Perfetto JSON array format for interactive inspection.
//!
//! The crate depends only on dmt-core (decision/depth types) and dmt-sim
//! (histograms, virtual time); schedulers and the simulator never depend
//! on it, so the observer cannot perturb the observed.

pub mod chrome;
pub mod merge;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use merge::merge_group_traces;
pub use profile::{ContentionProfile, LockEdge, MutexProfile, DEFER_REASONS};
pub use registry::{CounterId, GaugeId, HistId, MetricsRegistry, MetricsSnapshot};
pub use sink::{
    decode_records, encode_record, FileSink, NullSink, RingSink, TraceSink, TraceSinkSpec,
    DEFAULT_TRACE_CAP,
};
pub use trace::{TraceEvent, TraceRecord, Tracer};
