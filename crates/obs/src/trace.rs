//! Structured trace recorder.
//!
//! A [`Tracer`] collects typed [`TraceRecord`]s stamped with virtual-ns
//! time and the replica that produced them. The disabled path is one
//! predictable branch: [`Tracer::record`] takes a closure, so the event
//! value is never even constructed when tracing is off, and the backing
//! vector keeps capacity 0 — no allocation ever happens. The enabled
//! path is bounded: the default buffer caps at
//! [`crate::sink::DEFAULT_TRACE_CAP`] records and counts overflow in a
//! drop counter instead of growing without bound, and a pluggable
//! [`crate::sink::TraceSink`] (ring / file / null, selected by
//! [`crate::sink::TraceSinkSpec`]) replaces the buffer entirely for
//! runs too large to hold in memory.

use crate::sink::{FileSink, NullSink, RingSink, TraceSink, TraceSinkSpec, DEFAULT_TRACE_CAP};
use dmt_core::{Decision, DepthSample, ThreadId};
use dmt_lang::MutexId;

/// One typed trace event. `Sched` wraps the scheduler's own decision
/// vocabulary; the rest are the engine-level request lifecycle and the
/// group-communication legs (the engine owns the virtual clock, so it —
/// not dmt-groupcomm — stamps the hops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A scheduler decision (grant/defer/predict/admit/…).
    Sched(Decision),
    /// A request entered the total-order layer.
    GcSubmit { source: u64 },
    /// The sequencer assigned `seq` and fanned the message out.
    GcSequenced { seq: u64 },
    /// A replica received the sequenced message.
    GcDeliver { seq: u64 },
    /// A sequenced request materialised as thread `tid` at a replica.
    RequestArrived { tid: ThreadId, dummy: bool },
    /// The thread ran to completion at this replica.
    RequestFinished { tid: ThreadId },
    /// The first replica's answer for the request left for the client.
    RequestReplied { tid: ThreadId },
    /// Queue-depth sample taken after a scheduler event was applied.
    Depth(DepthSample),
    /// The replica crashed (fault injection or scripted kill).
    ReplicaCrashed,
    /// The replica completed passive-replication catch-up and rejoined
    /// the group, resuming delivery at sequence number `from_seq`.
    ReplicaRecovered { from_seq: u64 },
    /// Leader failover completed: this replica now treats `new_leader`
    /// as the LSA leader.
    LeaderFailover { new_leader: u32 },
    /// Thread `tid` released `mutex` (monitor exit or a `wait` call
    /// surrendering the monitor; re-acquisition after `wait` shows up
    /// as a `Grant { from_wait: true }` decision). Stamped by the
    /// engine, not the schedulers, so decision streams are unchanged —
    /// this closes Grant spans so the contention profiler can measure
    /// hold times.
    MutexReleased { tid: ThreadId, mutex: MutexId },
}

/// One stamped record: virtual nanoseconds, producing replica (clients
/// and the sequencer use [`TraceRecord::NO_REPLICA`]), event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub t_ns: u64,
    pub replica: u32,
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// `replica` value for cluster-level records (sequencer, client).
    pub const NO_REPLICA: u32 = u32::MAX;
}

/// Recorder with a runtime on/off switch. Cheap to embed always; costs
/// one branch per potential record when disabled. When enabled, records
/// go either to a bounded in-memory buffer (overflow dropped + counted)
/// or to a pluggable [`TraceSink`].
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
    cap: usize,
    dropped: u64,
    sink: Option<Box<dyn TraceSink>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("records", &self.records.len())
            .field("cap", &self.cap)
            .field("dropped", &self.dropped)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: never allocates, never records.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            records: Vec::new(),
            cap: 0,
            dropped: 0,
            sink: None,
        }
    }

    /// An enabled tracer with a preallocated record buffer capped at
    /// [`DEFAULT_TRACE_CAP`] records.
    pub fn enabled() -> Self {
        Tracer::buffered(DEFAULT_TRACE_CAP)
    }

    /// An enabled tracer buffering at most `cap` records in memory;
    /// overflow is dropped and counted.
    pub fn buffered(cap: usize) -> Self {
        let cap = cap.max(1);
        Tracer {
            enabled: true,
            records: Vec::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
            sink: None,
        }
    }

    /// An enabled tracer forwarding every record to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            enabled: true,
            records: Vec::new(),
            cap: 0,
            dropped: 0,
            sink: Some(sink),
        }
    }

    /// Builds the tracer a [`TraceSinkSpec`] describes. A `File` spec
    /// whose path cannot be created falls back to a [`NullSink`] (the
    /// run still completes; `written()` shows what would have flowed).
    pub fn from_spec(spec: &TraceSinkSpec) -> Self {
        match spec {
            TraceSinkSpec::Buffer { cap } => Tracer::buffered(*cap),
            TraceSinkSpec::Ring { cap } => Tracer::with_sink(Box::new(RingSink::new(*cap))),
            TraceSinkSpec::File { path, buf_bytes } => match FileSink::create(path, *buf_bytes) {
                Ok(s) => Tracer::with_sink(Box::new(s)),
                Err(_) => Tracer::with_sink(Box::new(NullSink::new())),
            },
            TraceSinkSpec::Null => Tracer::with_sink(Box::new(NullSink::new())),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `f()` if enabled. The closure runs only on the enabled
    /// path, so building an expensive event value is free when off.
    #[inline]
    pub fn record(&mut self, t_ns: u64, replica: u32, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            let rec = TraceRecord {
                t_ns,
                replica,
                ev: f(),
            };
            match &mut self.sink {
                None => {
                    if self.records.len() < self.cap {
                        self.records.push(rec);
                    } else {
                        self.dropped += 1;
                    }
                }
                Some(s) => s.accept(&rec),
            }
        }
    }

    /// Records currently buffered in memory (empty in sink mode; the
    /// sink owns retention — drain with [`Tracer::take_records`]).
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records dropped (buffer overflow plus whatever the sink
    /// reports).
    pub fn dropped(&self) -> u64 {
        self.dropped + self.sink.as_ref().map_or(0, |s| s.dropped())
    }

    /// Records retained or persisted (buffer occupancy, or the sink's
    /// written count).
    pub fn written(&self) -> u64 {
        match &self.sink {
            None => self.records.len() as u64,
            Some(s) => s.written(),
        }
    }

    /// Flushes sink-buffered state (end of run). No-op for the
    /// in-memory buffer.
    pub fn finish(&mut self) {
        if let Some(s) = &mut self.sink {
            s.finish();
        }
    }

    /// Buffer capacity — 0 on a never-enabled tracer, proving the
    /// disabled path allocation-free.
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Drains retained records, oldest first: the buffer's contents, or
    /// whatever a retaining sink (ring) still holds. File/null sinks
    /// yield nothing — the artifact lives elsewhere.
    pub fn take_records(&mut self) -> Vec<TraceRecord> {
        match &mut self.sink {
            None => std::mem::take(&mut self.records),
            Some(s) => s.take_records(),
        }
    }

    /// Consumes the tracer, returning the retained records.
    pub fn into_records(mut self) -> Vec<TraceRecord> {
        self.take_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_closures_or_allocates() {
        let mut t = Tracer::disabled();
        for i in 0..1000 {
            t.record(i, 0, || panic!("closure must not run when disabled"));
        }
        assert!(t.records().is_empty());
        assert_eq!(t.capacity(), 0, "disabled tracer must never allocate");
    }

    #[test]
    fn enabled_tracer_keeps_stamped_records_in_order() {
        let mut t = Tracer::enabled();
        t.record(10, 0, || TraceEvent::GcSubmit { source: 7 });
        t.record(20, 1, || TraceEvent::GcDeliver { seq: 0 });
        let r = t.records();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            TraceRecord {
                t_ns: 10,
                replica: 0,
                ev: TraceEvent::GcSubmit { source: 7 }
            }
        );
        assert_eq!(r[1].t_ns, 20);
        assert!(t.capacity() >= 2);
    }

    #[test]
    fn buffered_tracer_caps_and_counts_drops() {
        let mut t = Tracer::buffered(3);
        for i in 0..10 {
            t.record(i, 0, || TraceEvent::GcSequenced { seq: i });
        }
        assert_eq!(t.records().len(), 3);
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.written(), 3);
        // The kept records are the earliest (head of the run).
        assert_eq!(t.records()[2].t_ns, 2);
        let drained = t.take_records();
        assert_eq!(drained.len(), 3);
        assert!(t.records().is_empty());
    }

    #[test]
    fn ring_spec_keeps_the_tail_instead() {
        let mut t = Tracer::from_spec(&TraceSinkSpec::Ring { cap: 3 });
        for i in 0..10u64 {
            t.record(i, 0, || TraceEvent::GcSequenced { seq: i });
        }
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.written(), 3);
        let kept = t.take_records();
        assert_eq!(
            kept.iter().map(|r| r.t_ns).collect::<Vec<_>>(),
            vec![7, 8, 9],
            "ring retains the latest records"
        );
    }
}
