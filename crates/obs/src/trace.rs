//! Structured trace recorder.
//!
//! A [`Tracer`] collects typed [`TraceRecord`]s stamped with virtual-ns
//! time and the replica that produced them. The disabled path is one
//! predictable branch: [`Tracer::record`] takes a closure, so the event
//! value is never even constructed when tracing is off, and the backing
//! vector keeps capacity 0 — no allocation ever happens. The enabled
//! path preallocates and grows amortised like any Vec.

use dmt_core::{Decision, DepthSample, ThreadId};

/// One typed trace event. `Sched` wraps the scheduler's own decision
/// vocabulary; the rest are the engine-level request lifecycle and the
/// group-communication legs (the engine owns the virtual clock, so it —
/// not dmt-groupcomm — stamps the hops).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A scheduler decision (grant/defer/predict/admit/…).
    Sched(Decision),
    /// A request entered the total-order layer.
    GcSubmit { source: u64 },
    /// The sequencer assigned `seq` and fanned the message out.
    GcSequenced { seq: u64 },
    /// A replica received the sequenced message.
    GcDeliver { seq: u64 },
    /// A sequenced request materialised as thread `tid` at a replica.
    RequestArrived { tid: ThreadId, dummy: bool },
    /// The thread ran to completion at this replica.
    RequestFinished { tid: ThreadId },
    /// The first replica's answer for the request left for the client.
    RequestReplied { tid: ThreadId },
    /// Queue-depth sample taken after a scheduler event was applied.
    Depth(DepthSample),
    /// The replica crashed (fault injection or scripted kill).
    ReplicaCrashed,
    /// The replica completed passive-replication catch-up and rejoined
    /// the group, resuming delivery at sequence number `from_seq`.
    ReplicaRecovered { from_seq: u64 },
    /// Leader failover completed: this replica now treats `new_leader`
    /// as the LSA leader.
    LeaderFailover { new_leader: u32 },
}

/// One stamped record: virtual nanoseconds, producing replica (clients
/// and the sequencer use [`TraceRecord::NO_REPLICA`]), event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub t_ns: u64,
    pub replica: u32,
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// `replica` value for cluster-level records (sequencer, client).
    pub const NO_REPLICA: u32 = u32::MAX;
}

/// Recorder with a runtime on/off switch. Cheap to embed always; costs
/// one branch per potential record when disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    records: Vec<TraceRecord>,
}

impl Tracer {
    /// A disabled tracer: never allocates, never records.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            records: Vec::new(),
        }
    }

    /// An enabled tracer with a preallocated record buffer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            records: Vec::with_capacity(4096),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `f()` if enabled. The closure runs only on the enabled
    /// path, so building an expensive event value is free when off.
    #[inline]
    pub fn record(&mut self, t_ns: u64, replica: u32, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord {
                t_ns,
                replica,
                ev: f(),
            });
        }
    }

    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Buffer capacity — 0 on a never-enabled tracer, proving the
    /// disabled path allocation-free.
    pub fn capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Consumes the tracer, returning the records.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_closures_or_allocates() {
        let mut t = Tracer::disabled();
        for i in 0..1000 {
            t.record(i, 0, || panic!("closure must not run when disabled"));
        }
        assert!(t.records().is_empty());
        assert_eq!(t.capacity(), 0, "disabled tracer must never allocate");
    }

    #[test]
    fn enabled_tracer_keeps_stamped_records_in_order() {
        let mut t = Tracer::enabled();
        t.record(10, 0, || TraceEvent::GcSubmit { source: 7 });
        t.record(20, 1, || TraceEvent::GcDeliver { seq: 0 });
        let r = t.records();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r[0],
            TraceRecord {
                t_ns: 10,
                replica: 0,
                ev: TraceEvent::GcSubmit { source: 7 }
            }
        );
        assert_eq!(r[1].t_ns, 20);
        assert!(t.capacity() >= 2);
    }
}
