//! Deterministic merge of per-shard observability streams.
//!
//! A sharded run produces one decision trace per group engine, each
//! internally ordered by virtual time with ties broken by recording
//! order. Merging them under the total order `(t_ns, group, within-group
//! index)` yields a single stream that is a pure function of the
//! per-group streams — independent of how many worker threads produced
//! them or in which wall-clock order the shards finished. Metrics
//! snapshots merge commutatively (`MetricsSnapshot::merge`: counters
//! add, gauges max), so the observability layer as a whole commutes
//! with sharding.

use crate::trace::TraceRecord;

/// Merges per-group traces into one totally ordered stream.
///
/// Replica ids are remapped to a global space (`group * n_replicas +
/// replica`) so records stay attributable after the merge;
/// [`TraceRecord::NO_REPLICA`] (sequencer/client records) is preserved.
/// The order is `(t_ns, group, within-group index)`: a stable sort on
/// `(t_ns, group)` keeps each group's recording order for same-instant
/// records, so the result never depends on shard completion order.
pub fn merge_group_traces(groups: &[Vec<TraceRecord>], n_replicas: u32) -> Vec<TraceRecord> {
    let total: usize = groups.iter().map(Vec::len).sum();
    let mut tagged: Vec<(u32, TraceRecord)> = Vec::with_capacity(total);
    for (g, recs) in groups.iter().enumerate() {
        let g = g as u32;
        for r in recs {
            let mut r = *r;
            if r.replica != TraceRecord::NO_REPLICA {
                r.replica += g * n_replicas;
            }
            tagged.push((g, r));
        }
    }
    tagged.sort_by_key(|(g, r)| (r.t_ns, *g));
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use dmt_core::{Decision, ThreadId};
    use dmt_lang::MutexId;

    fn rec(t_ns: u64, replica: u32, tid: u32) -> TraceRecord {
        TraceRecord {
            t_ns,
            replica,
            ev: TraceEvent::Sched(Decision::Grant {
                tid: ThreadId::new(tid),
                mutex: MutexId::new(0),
                from_wait: false,
            }),
        }
    }

    #[test]
    fn merge_orders_by_time_then_group_then_index() {
        let g0 = vec![rec(10, 0, 1), rec(20, 1, 2), rec(20, 1, 3)];
        let g1 = vec![rec(5, 0, 4), rec(20, 2, 5)];
        let merged = merge_group_traces(&[g0, g1], 3);
        let tids: Vec<u32> = merged
            .iter()
            .map(|r| match r.ev {
                TraceEvent::Sched(Decision::Grant { tid, .. }) => tid.index() as u32,
                _ => unreachable!(),
            })
            .collect();
        // t=5 (g1) first; t=20 ties: group 0's two records in recording
        // order, then group 1's.
        assert_eq!(tids, vec![4, 1, 2, 3, 5]);
        // Replica remap: group 1, replica 2 → 1*3+2 = 5.
        assert_eq!(merged[4].replica, 5);
        assert_eq!(merged[1].replica, 0);
    }

    #[test]
    fn sentinel_replica_survives_remap() {
        let g1 = vec![rec(1, TraceRecord::NO_REPLICA, 1)];
        let merged = merge_group_traces(&[Vec::new(), g1], 3);
        assert_eq!(merged[0].replica, TraceRecord::NO_REPLICA);
    }

    #[test]
    fn merge_is_a_pure_function_of_group_streams() {
        // Shard completion order / worker count can never reorder the
        // merge inputs (they are indexed by group), but double-check the
        // result is reproducible across repeated merges.
        let groups = vec![
            vec![rec(3, 0, 1), rec(3, 0, 2)],
            vec![rec(3, 1, 3)],
            vec![rec(1, 0, 4), rec(9, 2, 5)],
        ];
        let a = merge_group_traces(&groups, 3);
        let b = merge_group_traces(&groups, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}
