//! Per-mutex contention profiler.
//!
//! Folds one replica's Defer/Grant/Release stream into a deterministic
//! per-object profile: defer counts split by [`DeferReason`], wait-time
//! and hold-time [`LogHistogram`]s, and the waits-for edge list (which
//! mutexes were held when another was acquired — the lock graph the
//! race-prediction pass in `dmt-analysis` walks for cycles).
//!
//! Span reconstruction:
//!
//! * **wait** — first `Defer { tid, mutex }` → matching `Grant`.
//!   Uncontended acquisitions (grant with no prior defer) contribute no
//!   wait sample, so the wait histogram measures *contention*, not
//!   traffic. The first defer's reason attributes the whole wait.
//! * **hold** — `Grant { tid, mutex }` → `MutexReleased { tid, mutex }`,
//!   outermost span under reentrancy (a depth counter absorbs nested
//!   re-grants). A `wait` call releases the monitor (the engine stamps
//!   `MutexReleased`), and the wake-up re-acquisition arrives as
//!   `Grant { from_wait: true }`, opening a fresh hold span.
//!
//! Everything is integer virtual-ns arithmetic over a deterministic
//! record stream, so profiles — and the flamegraph-style
//! [`ContentionProfile::collapsed`] rendering — are byte-stable across
//! reruns and worker counts.

use crate::trace::{TraceEvent, TraceRecord};
use dmt_core::{ContentionHints, Decision, DeferReason, ThreadId};
use dmt_lang::MutexId;
use dmt_sim::LogHistogram;
use std::collections::BTreeMap;

/// All [`DeferReason`] variants, in the order profile arrays use.
pub const DEFER_REASONS: [DeferReason; 4] = [
    DeferReason::MutexBusy,
    DeferReason::OrderGate,
    DeferReason::Barrier,
    DeferReason::Token,
];

fn reason_index(r: DeferReason) -> usize {
    match r {
        DeferReason::MutexBusy => 0,
        DeferReason::OrderGate => 1,
        DeferReason::Barrier => 2,
        DeferReason::Token => 3,
    }
}

/// Aggregate contention statistics for one mutex.
#[derive(Debug, Clone, Default)]
pub struct MutexProfile {
    /// Lock grants (including post-`wait` re-acquisitions).
    pub grants: u64,
    /// Defer decisions, indexed like [`DEFER_REASONS`].
    pub defers: [u64; 4],
    /// Total blocked virtual-ns attributed to each first-defer reason,
    /// indexed like [`DEFER_REASONS`].
    pub wait_ns_by_reason: [u64; 4],
    /// First-defer → grant latency of contended acquisitions.
    pub wait: LogHistogram,
    /// Grant → release span (outermost under reentrancy).
    pub hold: LogHistogram,
    /// Total held virtual-ns across closed spans.
    pub hold_ns: u64,
}

impl MutexProfile {
    /// Total defers across all reasons.
    pub fn defers_total(&self) -> u64 {
        self.defers.iter().sum()
    }

    /// Total contended-wait virtual-ns across all reasons.
    pub fn wait_ns_total(&self) -> u64 {
        self.wait_ns_by_reason.iter().sum()
    }
}

/// One waits-for edge: `held` was already held by the acquiring thread
/// when `acquired` was granted, `count` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockEdge {
    pub held: MutexId,
    pub acquired: MutexId,
    pub count: u64,
}

/// Per-replica contention profile: per-mutex statistics plus the lock
/// graph, both in deterministic (id-sorted) order.
#[derive(Debug, Clone, Default)]
pub struct ContentionProfile {
    /// Replica whose stream was folded.
    pub replica: u32,
    /// Per-mutex rows, sorted by mutex id.
    pub mutexes: Vec<(MutexId, MutexProfile)>,
    /// Waits-for edges, sorted by (held, acquired).
    pub edges: Vec<LockEdge>,
}

/// Open hold span: acquisition stamp and reentrancy depth.
struct Hold {
    since: u64,
    depth: u32,
}

impl ContentionProfile {
    /// Folds `records`, keeping only events from `replica`. Timings mix
    /// decisions and releases of a single replica's clock, so profiles
    /// are built one replica at a time (replica 0 by convention —
    /// deterministic replication makes the others identical anyway,
    /// which `observability.rs` pins at the match level).
    pub fn from_records(records: &[TraceRecord], replica: u32) -> Self {
        let mut mutexes: BTreeMap<u32, MutexProfile> = BTreeMap::new();
        let mut edges: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        // (tid, mutex) → first-defer stamp + reason.
        let mut waiting: BTreeMap<(u32, u32), (u64, DeferReason)> = BTreeMap::new();
        // (tid, mutex) → open hold span.
        let mut holding: BTreeMap<(u32, u32), Hold> = BTreeMap::new();

        for rec in records.iter().filter(|r| r.replica == replica) {
            match rec.ev {
                TraceEvent::Sched(Decision::Defer { tid, mutex, reason }) => {
                    let m = mutexes.entry(mutex.index() as u32).or_default();
                    m.defers[reason_index(reason)] += 1;
                    waiting.entry(key(tid, mutex)).or_insert((rec.t_ns, reason));
                }
                TraceEvent::Sched(Decision::Grant { tid, mutex, .. }) => {
                    let m = mutexes.entry(mutex.index() as u32).or_default();
                    m.grants += 1;
                    if let Some((t0, reason)) = waiting.remove(&key(tid, mutex)) {
                        let waited = rec.t_ns.saturating_sub(t0);
                        m.wait.record(waited);
                        m.wait_ns_by_reason[reason_index(reason)] += waited;
                    }
                    match holding.get_mut(&key(tid, mutex)) {
                        Some(h) => h.depth += 1, // reentrant re-grant
                        None => {
                            for (&(htid, held), _) in holding.range(key_range(tid)) {
                                debug_assert_eq!(htid, tid.0);
                                *edges.entry((held, mutex.index() as u32)).or_default() += 1;
                            }
                            holding.insert(
                                key(tid, mutex),
                                Hold {
                                    since: rec.t_ns,
                                    depth: 1,
                                },
                            );
                        }
                    }
                }
                TraceEvent::MutexReleased { tid, mutex } => {
                    if let Some(h) = holding.get_mut(&key(tid, mutex)) {
                        h.depth -= 1;
                        if h.depth == 0 {
                            let held = rec.t_ns.saturating_sub(h.since);
                            holding.remove(&key(tid, mutex));
                            let m = mutexes.entry(mutex.index() as u32).or_default();
                            m.hold.record(held);
                            m.hold_ns += held;
                        }
                    }
                }
                _ => {}
            }
        }

        ContentionProfile {
            replica,
            mutexes: mutexes
                .into_iter()
                .map(|(id, p)| (MutexId::new(id), p))
                .collect(),
            edges: edges
                .into_iter()
                .map(|((held, acquired), count)| LockEdge {
                    held: MutexId::new(held),
                    acquired: MutexId::new(acquired),
                    count,
                })
                .collect(),
        }
    }

    /// Total grants across all mutexes.
    pub fn grants_total(&self) -> u64 {
        self.mutexes.iter().map(|(_, p)| p.grants).sum()
    }

    /// Total defers across all mutexes.
    pub fn defers_total(&self) -> u64 {
        self.mutexes.iter().map(|(_, p)| p.defers_total()).sum()
    }

    /// Total contended acquisitions (wait samples) across all mutexes.
    pub fn contended_total(&self) -> u64 {
        self.mutexes.iter().map(|(_, p)| p.wait.count()).sum()
    }

    /// Total contended-wait virtual-ns across all mutexes.
    pub fn wait_ns_total(&self) -> u64 {
        self.mutexes.iter().map(|(_, p)| p.wait_ns_total()).sum()
    }

    /// p-th percentile (`p` in 0–100, as [`LogHistogram::percentile_ns`])
    /// of the merged wait histogram; 0 when nothing contended.
    pub fn wait_percentile_ns(&self, p: f64) -> u64 {
        let mut merged = LogHistogram::default();
        for (_, prof) in &self.mutexes {
            merged.merge(&prof.wait);
        }
        merged.percentile_ns(p).unwrap_or(0)
    }

    /// Flamegraph-style collapsed-stack rendering, one line per frame
    /// stack with an integer virtual-ns weight — feed it to any
    /// `flamegraph.pl`-compatible renderer. Stacks:
    ///
    /// * `m<id>;hold <hold_ns>` — time the mutex was held,
    /// * `m<id>;wait;<reason> <wait_ns>` — time threads were blocked on
    ///   it, split by the first defer's reason.
    ///
    /// Lines are id-sorted and zero-weight frames are omitted, so the
    /// output is byte-stable.
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for (id, p) in &self.mutexes {
            if p.hold_ns > 0 {
                out.push_str(&format!("m{};hold {}\n", id.index(), p.hold_ns));
            }
            for (i, reason) in DEFER_REASONS.iter().enumerate() {
                if p.wait_ns_by_reason[i] > 0 {
                    out.push_str(&format!(
                        "m{};wait;{} {}\n",
                        id.index(),
                        reason.name(),
                        p.wait_ns_by_reason[i]
                    ));
                }
            }
        }
        out
    }

    /// Derives scheduler hints: a mutex is *hot* when it accounts for at
    /// least `pct` percent of the profile's total contended-wait time
    /// (integer arithmetic — deterministic). An uncontended profile
    /// yields empty hints.
    pub fn hints(&self, pct: u32) -> ContentionHints {
        let total = self.wait_ns_total();
        let mut hints = ContentionHints::new();
        if total == 0 {
            return hints;
        }
        for (id, p) in &self.mutexes {
            if p.wait_ns_total() * 100 >= total * pct as u64 {
                hints.mark_hot(*id);
            }
        }
        hints
    }
}

fn key(tid: ThreadId, mutex: MutexId) -> (u32, u32) {
    (tid.0, mutex.index() as u32)
}

fn key_range(tid: ThreadId) -> std::ops::RangeInclusive<(u32, u32)> {
    (tid.0, 0)..=(tid.0, u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }
    fn m(v: u32) -> MutexId {
        MutexId::new(v)
    }
    fn rec(t_ns: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord {
            t_ns,
            replica: 0,
            ev,
        }
    }
    fn grant(t_ns: u64, tid: ThreadId, mutex: MutexId) -> TraceRecord {
        rec(
            t_ns,
            TraceEvent::Sched(Decision::Grant {
                tid,
                mutex,
                from_wait: false,
            }),
        )
    }
    fn defer(t_ns: u64, tid: ThreadId, mutex: MutexId, reason: DeferReason) -> TraceRecord {
        rec(
            t_ns,
            TraceEvent::Sched(Decision::Defer { tid, mutex, reason }),
        )
    }
    fn release(t_ns: u64, tid: ThreadId, mutex: MutexId) -> TraceRecord {
        rec(t_ns, TraceEvent::MutexReleased { tid, mutex })
    }

    #[test]
    fn wait_and_hold_spans_reconstruct() {
        // t0 holds m0 [10, 50]; t1 defers at 20, granted 50, releases 80.
        let records = vec![
            grant(10, t(0), m(0)),
            defer(20, t(1), m(0), DeferReason::MutexBusy),
            release(50, t(0), m(0)),
            grant(50, t(1), m(0)),
            release(80, t(1), m(0)),
        ];
        let p = ContentionProfile::from_records(&records, 0);
        assert_eq!(p.mutexes.len(), 1);
        let (id, prof) = &p.mutexes[0];
        assert_eq!(id.index(), 0);
        assert_eq!(prof.grants, 2);
        assert_eq!(prof.defers, [1, 0, 0, 0]);
        assert_eq!(prof.wait.count(), 1, "only the contended grant waits");
        assert_eq!(prof.wait_ns_by_reason[0], 30);
        assert_eq!(prof.hold.count(), 2);
        assert_eq!(prof.hold_ns, 40 + 30);
        assert!(p.edges.is_empty());
    }

    #[test]
    fn nested_holds_become_lock_edges_and_reentrancy_folds() {
        let records = vec![
            grant(0, t(0), m(1)),
            grant(5, t(0), m(2)), // nested: edge 1 -> 2
            grant(6, t(0), m(2)), // reentrant re-grant: no edge, no new span
            release(8, t(0), m(2)),
            release(10, t(0), m(2)), // outermost close: hold = 5
            release(12, t(0), m(1)),
        ];
        let p = ContentionProfile::from_records(&records, 0);
        assert_eq!(
            p.edges,
            vec![LockEdge {
                held: m(1),
                acquired: m(2),
                count: 1
            }]
        );
        let m2 = &p.mutexes.iter().find(|(id, _)| id.index() == 2).unwrap().1;
        assert_eq!(m2.hold.count(), 1);
        assert_eq!(m2.hold_ns, 5);
    }

    #[test]
    fn collapsed_output_is_stable_and_reason_tagged() {
        let records = vec![
            grant(0, t(0), m(3)),
            defer(1, t(1), m(3), DeferReason::Token),
            release(10, t(0), m(3)),
            grant(10, t(1), m(3)),
            release(15, t(1), m(3)),
        ];
        let p = ContentionProfile::from_records(&records, 0);
        assert_eq!(p.collapsed(), "m3;hold 15\nm3;wait;token 9\n");
    }

    #[test]
    fn hints_mark_dominant_waiters_only() {
        let records = vec![
            // m0: 90ns of waiting. m1: 10ns.
            grant(0, t(0), m(0)),
            defer(5, t(1), m(0), DeferReason::MutexBusy),
            release(95, t(0), m(0)),
            grant(95, t(1), m(0)),
            release(96, t(1), m(0)),
            grant(100, t(0), m(1)),
            defer(105, t(1), m(1), DeferReason::MutexBusy),
            release(115, t(0), m(1)),
            grant(115, t(1), m(1)),
            release(116, t(1), m(1)),
        ];
        let p = ContentionProfile::from_records(&records, 0);
        let hints = p.hints(50);
        assert!(hints.is_hot(m(0)));
        assert!(!hints.is_hot(m(1)));
        assert_eq!(hints.hot_count(), 1);
        assert!(ContentionProfile::default().hints(50).is_empty());
    }
}
