//! Metrics registry: named counters, gauges, and log-scale histograms
//! behind dense integer handles.
//!
//! Registration happens once at setup (string lookup, O(n)); the hot
//! path works exclusively through copyable `*Id` handles (Vec index,
//! no hashing — the dense-ID invariant from DESIGN.md applied to
//! metrics). Snapshots are name-sorted so their serialisation is
//! byte-stable regardless of registration order, and merging is
//! commutative: merging per-worker snapshots in any order yields the
//! same result, which the sweep runners rely on for worker-count
//! independence.

use dmt_sim::LogHistogram;

/// Handle of a registered counter (monotone `u64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge (last-write-wins `i64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered [`LogHistogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

/// The registry: one per engine run.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, i64)>,
    hists: Vec<(String, LogHistogram)>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(i) = self.hists.iter().position(|(n, _)| n == name) {
            return HistId(i);
        }
        self.hists.push((name.to_string(), LogHistogram::new()));
        HistId(self.hists.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a counter to an externally accumulated total (used when an
    /// existing subsystem already kept the count, e.g. net stats).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].1 = v;
    }

    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0].1 = v;
    }

    #[inline]
    pub fn record(&mut self, id: HistId, value: u64) {
        self.hists[id.0].1.record(value);
    }

    /// Merges a whole externally built histogram into `id`'s.
    pub fn merge_histogram(&mut self, id: HistId, h: &LogHistogram) {
        self.hists[id.0].1.merge(h);
    }

    /// Name-sorted, self-contained copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms = self.hists.clone();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Point-in-time copy of a registry, name-sorted. The stable exchange
/// format: runs return it, sweeps merge it, figures serialise it.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, LogHistogram)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Commutative merge: counters add, gauges keep the maximum (the
    /// only order-independent choice for last-write-wins values),
    /// histograms bucket-add. Metrics present on either side survive.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = (*mine).max(*v),
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_names_deduplicate() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("alpha");
        let b = r.counter("beta");
        assert_ne!(a, b);
        assert_eq!(r.counter("alpha"), a);
        r.inc(a, 2);
        r.inc(a, 3);
        r.inc(b, 1);
        let s = r.snapshot();
        assert_eq!(s.counter("alpha"), Some(5));
        assert_eq!(s.counter("beta"), Some(1));
    }

    #[test]
    fn snapshot_is_name_sorted_regardless_of_registration_order() {
        let mut r = MetricsRegistry::new();
        r.counter("zeta");
        r.counter("alpha");
        let g = r.gauge("mid");
        r.set_gauge(g, -4);
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(s.gauge("mid"), Some(-4));
    }

    #[test]
    fn merge_is_commutative() {
        let mk = |seed: u64| {
            let mut r = MetricsRegistry::new();
            let c = r.counter("events");
            r.inc(c, seed);
            let h = r.histogram("lat");
            r.record(h, seed * 100);
            if seed.is_multiple_of(2) {
                let only = r.counter("even-only");
                r.inc(only, 7);
            }
            r.snapshot()
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c);
        let mut cb = c.clone();
        cb.merge(&b);
        cb.merge(&a);
        assert_eq!(ab.counters, cb.counters);
        assert_eq!(ab.gauges, cb.gauges);
        assert_eq!(
            ab.histogram("lat").unwrap().p50_ns(),
            cb.histogram("lat").unwrap().p50_ns()
        );
        assert_eq!(ab.counter("events"), Some(6));
        assert_eq!(ab.counter("even-only"), Some(7));
    }
}
