//! Chrome-trace (`chrome://tracing` / Perfetto) JSON exporter.
//!
//! Serialises a recorded trace to the Trace Event Format JSON array:
//! scheduler decisions and group-comm legs become instant events
//! (`"ph":"i"`), request lifecycles become async begin/end pairs
//! (`"ph":"b"/"e"` keyed by thread id), and queue-depth samples become
//! counter tracks (`"ph":"C"`), so the load on each scheduler structure
//! is plotted over virtual time. Timestamps are virtual nanoseconds
//! divided into the format's microsecond unit with three decimals —
//! pure integer math, so the output is byte-stable.
//!
//! The JSON is hand-rolled like dmt-bench's artifacts: the workspace
//! intentionally has no external dependencies.

use crate::trace::{TraceEvent, TraceRecord};
use dmt_core::Decision;
use std::fmt::Write;

/// `pid` used for cluster-level records (sequencer leg, client side).
const CLUSTER_PID: i64 = -1;

fn pid_of(replica: u32) -> i64 {
    if replica == TraceRecord::NO_REPLICA {
        CLUSTER_PID
    } else {
        replica as i64
    }
}

/// ns → "µs with 3 decimals", integer math only.
fn ts(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

fn decision_args(d: &Decision) -> String {
    match *d {
        Decision::Admit { tid } | Decision::AdmitDefer { tid } => {
            format!("{{\"tid\":{}}}", tid.index())
        }
        Decision::Grant {
            tid,
            mutex,
            from_wait,
        } => format!(
            "{{\"tid\":{},\"mutex\":{},\"from_wait\":{}}}",
            tid.index(),
            mutex.index(),
            from_wait
        ),
        Decision::Defer { tid, mutex, reason } => format!(
            "{{\"tid\":{},\"mutex\":{},\"reason\":\"{}\"}}",
            tid.index(),
            mutex.index(),
            reason.name()
        ),
        Decision::Predict {
            tid,
            mutex,
            granted,
        } => format!(
            "{{\"tid\":{},\"mutex\":{},\"granted\":{}}}",
            tid.index(),
            mutex.index(),
            granted
        ),
        Decision::TokenGrant { tid } => format!("{{\"tid\":{}}}", tid.index()),
        Decision::TokenRelease { tid, last_lock } => {
            format!("{{\"tid\":{},\"last_lock\":{}}}", tid.index(), last_lock)
        }
        Decision::Announce { tid, mutex, order } => format!(
            "{{\"tid\":{},\"mutex\":{},\"order\":{}}}",
            tid.index(),
            mutex.index(),
            order
        ),
        Decision::RoundStart { pool, dummies } => {
            format!("{{\"pool\":{pool},\"dummies\":{dummies}}}")
        }
    }
}

/// Exports `records` as a Trace Event Format JSON object.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for r in records {
        let mut line = String::with_capacity(96);
        let pid = pid_of(r.replica);
        match &r.ev {
            TraceEvent::Sched(d) => {
                let _ = write!(
                    line,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"sched\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{}}}",
                    d.name(),
                    ts(r.t_ns),
                    pid,
                    decision_args(d)
                );
            }
            TraceEvent::GcSubmit { source } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"gc-submit\",\"ph\":\"i\",\"s\":\"g\",\"cat\":\"gc\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"source\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    source
                );
            }
            TraceEvent::GcSequenced { seq } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"gc-sequenced\",\"ph\":\"i\",\"s\":\"g\",\"cat\":\"gc\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"seq\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    seq
                );
            }
            TraceEvent::GcDeliver { seq } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"gc-deliver\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"gc\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"seq\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    seq
                );
            }
            TraceEvent::RequestArrived { tid, dummy } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"request\",\"ph\":\"b\",\"cat\":\"req\",\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"dummy\":{}}}}}",
                    tid.index(),
                    ts(r.t_ns),
                    pid,
                    tid.index(),
                    dummy
                );
            }
            TraceEvent::RequestFinished { tid } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"request\",\"ph\":\"e\",\"cat\":\"req\",\"id\":{},\"ts\":{},\"pid\":{},\"tid\":{}}}",
                    tid.index(),
                    ts(r.t_ns),
                    pid,
                    tid.index()
                );
            }
            TraceEvent::RequestReplied { tid } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"reply\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"req\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
                    ts(r.t_ns),
                    pid,
                    tid.index()
                );
            }
            TraceEvent::ReplicaCrashed => {
                let _ = write!(
                    line,
                    "{{\"name\":\"replica-crashed\",\"ph\":\"i\",\"s\":\"p\",\"cat\":\"fault\",\"ts\":{},\"pid\":{},\"tid\":0}}",
                    ts(r.t_ns),
                    pid
                );
            }
            TraceEvent::ReplicaRecovered { from_seq } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"replica-recovered\",\"ph\":\"i\",\"s\":\"p\",\"cat\":\"fault\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"from_seq\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    from_seq
                );
            }
            TraceEvent::LeaderFailover { new_leader } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"leader-failover\",\"ph\":\"i\",\"s\":\"p\",\"cat\":\"fault\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"new_leader\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    new_leader
                );
            }
            TraceEvent::MutexReleased { tid, mutex } => {
                let _ = write!(
                    line,
                    "{{\"name\":\"mutex-released\",\"ph\":\"i\",\"s\":\"t\",\"cat\":\"sched\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"tid\":{},\"mutex\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    tid.index(),
                    mutex.index()
                );
            }
            TraceEvent::Depth(d) => {
                let _ = write!(
                    line,
                    "{{\"name\":\"queue-depth\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{\"admission\":{},\"lock_queued\":{},\"wait_set\":{},\"sched_queue\":{}}}}}",
                    ts(r.t_ns),
                    pid,
                    d.admission,
                    d.lock_queued,
                    d.wait_set,
                    d.sched_queue
                );
            }
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmt_core::{DeferReason, DepthSample, ThreadId};
    use dmt_lang::MutexId;

    fn t(v: u32) -> ThreadId {
        ThreadId::new(v)
    }

    #[test]
    fn export_covers_every_event_type_and_is_stable() {
        let records = vec![
            TraceRecord {
                t_ns: 0,
                replica: TraceRecord::NO_REPLICA,
                ev: TraceEvent::GcSubmit { source: 1_000_000 },
            },
            TraceRecord {
                t_ns: 1500,
                replica: TraceRecord::NO_REPLICA,
                ev: TraceEvent::GcSequenced { seq: 0 },
            },
            TraceRecord {
                t_ns: 2750,
                replica: 0,
                ev: TraceEvent::GcDeliver { seq: 0 },
            },
            TraceRecord {
                t_ns: 2750,
                replica: 0,
                ev: TraceEvent::RequestArrived {
                    tid: t(0),
                    dummy: false,
                },
            },
            TraceRecord {
                t_ns: 2750,
                replica: 0,
                ev: TraceEvent::Sched(Decision::Admit { tid: t(0) }),
            },
            TraceRecord {
                t_ns: 3000,
                replica: 0,
                ev: TraceEvent::Sched(Decision::Defer {
                    tid: t(0),
                    mutex: MutexId::new(2),
                    reason: DeferReason::Token,
                }),
            },
            TraceRecord {
                t_ns: 3200,
                replica: 0,
                ev: TraceEvent::Depth(DepthSample {
                    admission: 1,
                    lock_queued: 2,
                    wait_set: 0,
                    sched_queue: 3,
                }),
            },
            TraceRecord {
                t_ns: 4000,
                replica: 0,
                ev: TraceEvent::RequestFinished { tid: t(0) },
            },
            TraceRecord {
                t_ns: 4100,
                replica: 0,
                ev: TraceEvent::RequestReplied { tid: t(0) },
            },
            TraceRecord {
                t_ns: 5000,
                replica: 2,
                ev: TraceEvent::ReplicaCrashed,
            },
            TraceRecord {
                t_ns: 5100,
                replica: 0,
                ev: TraceEvent::LeaderFailover { new_leader: 1 },
            },
            TraceRecord {
                t_ns: 9000,
                replica: 2,
                ev: TraceEvent::ReplicaRecovered { from_seq: 17 },
            },
            TraceRecord {
                t_ns: 9500,
                replica: 0,
                ev: TraceEvent::MutexReleased {
                    tid: t(0),
                    mutex: MutexId::new(2),
                },
            },
        ];
        let a = chrome_trace_json(&records);
        let b = chrome_trace_json(&records);
        assert_eq!(a, b, "export must be deterministic");
        assert!(a.starts_with("{\"traceEvents\":[\n"));
        assert!(a.trim_end().ends_with("]}"));
        // µs timestamps via integer math: 2750 ns → 2.750.
        assert!(a.contains("\"ts\":2.750"), "{a}");
        assert!(a.contains("\"reason\":\"token\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(
            a.contains("\"pid\":-1"),
            "cluster records use the cluster pid"
        );
        assert!(a.contains("\"name\":\"replica-crashed\""));
        assert!(a.contains("\"from_seq\":17"));
        assert!(a.contains("\"new_leader\":1"));
        assert!(a.contains("\"name\":\"mutex-released\""));
        // Every record appears as one line.
        assert_eq!(a.lines().count(), records.len() + 2);
    }
}
