//! Deterministic open-loop arrival processes.
//!
//! A closed-loop client (the paper's §3.5 setting) submits its next
//! request when the previous reply arrives, so the offered load adapts
//! to the system's speed and queueing never builds up beyond one
//! request per client. An *open-loop* client submits at externally
//! scheduled instants regardless of replies — the regime in which
//! admission policies (LSA's leader serialisation vs. MAT's concurrent
//! token queue) separate, because latecomers queue behind slow requests.
//!
//! [`PoissonProcess`] produces the classic memoryless arrival stream:
//! exponentially distributed inter-arrival gaps with a given rate. All
//! randomness comes from the in-tree [`SplitMix64`], all timestamps are
//! integer nanoseconds of *virtual* time, and no wall clock is ever
//! consulted — the same seed yields the same arrival schedule on every
//! platform, which is what lets the open-loop experiments demand
//! byte-identical result artifacts across reruns and worker counts.

use crate::rng::SplitMix64;
use crate::time::SimTime;

/// A deterministic Poisson-like arrival process: exponential gaps with
/// mean `1/rate`, rounded to whole nanoseconds and clamped to ≥ 1 ns so
/// each stream's arrivals are strictly increasing.
#[derive(Clone, Debug)]
pub struct PoissonProcess {
    rng: SplitMix64,
    next: SimTime,
    mean_gap_ns: f64,
}

impl PoissonProcess {
    /// Creates a process with the given aggregate rate in requests per
    /// *virtual* second. Panics on a non-positive or non-finite rate.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        PoissonProcess {
            rng: SplitMix64::new(seed),
            next: SimTime::ZERO,
            mean_gap_ns: 1e9 / rate_per_sec,
        }
    }

    /// Returns the next arrival instant and advances the process. The
    /// first arrival already sits one exponential gap after time zero
    /// (an arrival *process*, not an arrival at the epoch).
    pub fn next_arrival(&mut self) -> SimTime {
        let gap = self.rng.next_exp(self.mean_gap_ns).round() as u64;
        self.next += crate::time::SimDuration::from_nanos(gap.max(1));
        self.next
    }

    /// The first `n` arrival instants as a schedule.
    pub fn take_schedule(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// Convenience: the first `n` arrivals of a fresh process.
pub fn poisson_schedule(seed: u64, rate_per_sec: f64, n: usize) -> Vec<SimTime> {
    PoissonProcess::new(seed, rate_per_sec).take_schedule(n)
}

/// A deterministic two-phase Markov-modulated Poisson process (MMPP-2),
/// the standard model for bursty "on/off" traffic: the process alternates
/// between an ON phase (high arrival rate) and an OFF phase (low — possibly
/// zero — rate), with exponentially distributed phase dwell times.
///
/// Both the phase-switching chain and the per-phase arrival streams draw
/// from one seeded [`SplitMix64`] in a fixed consumption order, so the
/// whole burst schedule is a pure function of the constructor arguments —
/// the same property [`PoissonProcess`] has, which the byte-stable
/// benchmark artifacts rely on. Because exponential gaps are memoryless,
/// redrawing the pending gap at a phase switch preserves the MMPP
/// distribution while keeping the draw order trivially deterministic.
#[derive(Clone, Debug)]
pub struct OnOffProcess {
    rng: SplitMix64,
    /// Continuous-time cursor in virtual ns; rounded at each emission.
    cursor: f64,
    /// Absolute virtual ns at which the current phase ends.
    phase_end: f64,
    on: bool,
    mean_gap_on_ns: f64,
    /// `f64::INFINITY` encodes a silent OFF phase (rate 0).
    mean_gap_off_ns: f64,
    mean_on_ns: f64,
    mean_off_ns: f64,
    last_emitted: u64,
}

impl OnOffProcess {
    /// Creates an MMPP-2 arrival process.
    ///
    /// * `rate_on_per_sec` — arrival rate during ON phases (must be > 0),
    /// * `rate_off_per_sec` — arrival rate during OFF phases (may be 0 for
    ///   a pure on/off source),
    /// * `mean_on_ns` / `mean_off_ns` — mean phase dwell times in virtual
    ///   nanoseconds (must be > 0).
    ///
    /// The process starts in an ON phase whose length is drawn like every
    /// later one, so the first burst is not special-cased.
    pub fn new(
        seed: u64,
        rate_on_per_sec: f64,
        rate_off_per_sec: f64,
        mean_on_ns: u64,
        mean_off_ns: u64,
    ) -> Self {
        assert!(
            rate_on_per_sec > 0.0 && rate_on_per_sec.is_finite(),
            "ON arrival rate must be positive and finite, got {rate_on_per_sec}"
        );
        assert!(
            rate_off_per_sec >= 0.0 && rate_off_per_sec.is_finite(),
            "OFF arrival rate must be non-negative and finite, got {rate_off_per_sec}"
        );
        assert!(
            mean_on_ns > 0 && mean_off_ns > 0,
            "phase dwell means must be positive"
        );
        let mut rng = SplitMix64::new(seed);
        let first_phase = rng.next_exp(mean_on_ns as f64);
        OnOffProcess {
            rng,
            cursor: 0.0,
            phase_end: first_phase,
            on: true,
            mean_gap_on_ns: 1e9 / rate_on_per_sec,
            mean_gap_off_ns: if rate_off_per_sec == 0.0 {
                f64::INFINITY
            } else {
                1e9 / rate_off_per_sec
            },
            mean_on_ns: mean_on_ns as f64,
            mean_off_ns: mean_off_ns as f64,
            last_emitted: 0,
        }
    }

    /// Returns the next arrival instant and advances the process. Arrivals
    /// are strictly increasing integer virtual-ns instants.
    pub fn next_arrival(&mut self) -> SimTime {
        loop {
            let mean_gap = if self.on {
                self.mean_gap_on_ns
            } else {
                self.mean_gap_off_ns
            };
            let candidate = if mean_gap.is_finite() {
                self.cursor + self.rng.next_exp(mean_gap)
            } else {
                f64::INFINITY
            };
            if candidate <= self.phase_end {
                self.cursor = candidate;
                let ns = (candidate.round() as u64).max(self.last_emitted + 1);
                self.last_emitted = ns;
                return SimTime::ZERO + crate::time::SimDuration::from_nanos(ns);
            }
            // Phase expires before the candidate arrival: jump to the phase
            // boundary, flip phases, draw the new dwell, and redraw the gap
            // (valid by memorylessness of the exponential).
            self.cursor = self.phase_end;
            self.on = !self.on;
            let dwell_mean = if self.on {
                self.mean_on_ns
            } else {
                self.mean_off_ns
            };
            self.phase_end = self.cursor + self.rng.next_exp(dwell_mean);
        }
    }

    /// The first `n` arrival instants as a schedule.
    pub fn take_schedule(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// Convenience: the first `n` arrivals of a fresh on/off process.
pub fn onoff_schedule(
    seed: u64,
    rate_on_per_sec: f64,
    rate_off_per_sec: f64,
    mean_on_ns: u64,
    mean_off_ns: u64,
    n: usize,
) -> Vec<SimTime> {
    OnOffProcess::new(
        seed,
        rate_on_per_sec,
        rate_off_per_sec,
        mean_on_ns,
        mean_off_ns,
    )
    .take_schedule(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = poisson_schedule(7, 1000.0, 500);
        let b = poisson_schedule(7, 1000.0, 500);
        assert_eq!(a, b);
        let c = poisson_schedule(8, 1000.0, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let sched = poisson_schedule(3, 1e9, 10_000); // 1 arrival/ns mean
        for w in sched.windows(2) {
            assert!(w[1] > w[0], "arrivals must be strictly increasing");
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        // 2000 req/s → mean gap 0.5 ms.
        let sched = poisson_schedule(11, 2000.0, 100_000);
        let span = sched.last().unwrap().as_nanos() - sched[0].as_nanos();
        let mean_gap = span as f64 / (sched.len() - 1) as f64;
        let expected = 0.5e6;
        assert!(
            (mean_gap - expected).abs() / expected < 0.02,
            "mean gap {mean_gap} ns vs expected {expected} ns"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        PoissonProcess::new(1, 0.0);
    }

    #[test]
    fn onoff_same_seed_same_schedule() {
        let a = onoff_schedule(7, 50_000.0, 500.0, 2_000_000, 8_000_000, 2_000);
        let b = onoff_schedule(7, 50_000.0, 500.0, 2_000_000, 8_000_000, 2_000);
        assert_eq!(a, b);
        let c = onoff_schedule(8, 50_000.0, 500.0, 2_000_000, 8_000_000, 2_000);
        assert_ne!(a, c);
    }

    #[test]
    fn onoff_arrivals_strictly_increase() {
        let sched = onoff_schedule(3, 1e8, 1e6, 10_000, 40_000, 20_000);
        for w in sched.windows(2) {
            assert!(w[1] > w[0], "arrivals must be strictly increasing");
        }
    }

    #[test]
    fn onoff_is_burstier_than_poisson_at_same_mean_rate() {
        // ON rate 100k/s for 20% of the time, silent otherwise → mean 20k/s.
        // Compare squared-coefficient-of-variation of inter-arrival gaps
        // against a plain Poisson at the matched mean rate (CV² = 1).
        let bursty = onoff_schedule(11, 100_000.0, 0.0, 2_000_000, 8_000_000, 50_000);
        let gaps: Vec<f64> = bursty
            .windows(2)
            .map(|w| (w[1].as_nanos() - w[0].as_nanos()) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv2 = var / (mean * mean);
        assert!(
            cv2 > 2.0,
            "on/off traffic should be over-dispersed, CV²={cv2}"
        );
    }

    #[test]
    fn onoff_silent_off_phase_emits_nothing_during_off() {
        // With rate_off = 0 every gap larger than the ON dwell must span an
        // OFF dwell; just assert the schedule still terminates and is sane.
        let sched = onoff_schedule(5, 1e6, 0.0, 1_000_000, 3_000_000, 5_000);
        assert_eq!(sched.len(), 5_000);
        assert!(sched[0] > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "ON arrival rate must be positive")]
    fn onoff_zero_on_rate_panics() {
        OnOffProcess::new(1, 0.0, 0.0, 1, 1);
    }
}
