//! Deterministic open-loop arrival processes.
//!
//! A closed-loop client (the paper's §3.5 setting) submits its next
//! request when the previous reply arrives, so the offered load adapts
//! to the system's speed and queueing never builds up beyond one
//! request per client. An *open-loop* client submits at externally
//! scheduled instants regardless of replies — the regime in which
//! admission policies (LSA's leader serialisation vs. MAT's concurrent
//! token queue) separate, because latecomers queue behind slow requests.
//!
//! [`PoissonProcess`] produces the classic memoryless arrival stream:
//! exponentially distributed inter-arrival gaps with a given rate. All
//! randomness comes from the in-tree [`SplitMix64`], all timestamps are
//! integer nanoseconds of *virtual* time, and no wall clock is ever
//! consulted — the same seed yields the same arrival schedule on every
//! platform, which is what lets the open-loop experiments demand
//! byte-identical result artifacts across reruns and worker counts.

use crate::rng::SplitMix64;
use crate::time::SimTime;

/// A deterministic Poisson-like arrival process: exponential gaps with
/// mean `1/rate`, rounded to whole nanoseconds and clamped to ≥ 1 ns so
/// each stream's arrivals are strictly increasing.
#[derive(Clone, Debug)]
pub struct PoissonProcess {
    rng: SplitMix64,
    next: SimTime,
    mean_gap_ns: f64,
}

impl PoissonProcess {
    /// Creates a process with the given aggregate rate in requests per
    /// *virtual* second. Panics on a non-positive or non-finite rate.
    pub fn new(seed: u64, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "arrival rate must be positive and finite, got {rate_per_sec}"
        );
        PoissonProcess {
            rng: SplitMix64::new(seed),
            next: SimTime::ZERO,
            mean_gap_ns: 1e9 / rate_per_sec,
        }
    }

    /// Returns the next arrival instant and advances the process. The
    /// first arrival already sits one exponential gap after time zero
    /// (an arrival *process*, not an arrival at the epoch).
    pub fn next_arrival(&mut self) -> SimTime {
        let gap = self.rng.next_exp(self.mean_gap_ns).round() as u64;
        self.next += crate::time::SimDuration::from_nanos(gap.max(1));
        self.next
    }

    /// The first `n` arrival instants as a schedule.
    pub fn take_schedule(&mut self, n: usize) -> Vec<SimTime> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

/// Convenience: the first `n` arrivals of a fresh process.
pub fn poisson_schedule(seed: u64, rate_per_sec: f64, n: usize) -> Vec<SimTime> {
    PoissonProcess::new(seed, rate_per_sec).take_schedule(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = poisson_schedule(7, 1000.0, 500);
        let b = poisson_schedule(7, 1000.0, 500);
        assert_eq!(a, b);
        let c = poisson_schedule(8, 1000.0, 500);
        assert_ne!(a, c);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let sched = poisson_schedule(3, 1e9, 10_000); // 1 arrival/ns mean
        for w in sched.windows(2) {
            assert!(w[1] > w[0], "arrivals must be strictly increasing");
        }
    }

    #[test]
    fn mean_gap_matches_rate() {
        // 2000 req/s → mean gap 0.5 ms.
        let sched = poisson_schedule(11, 2000.0, 100_000);
        let span = sched.last().unwrap().as_nanos() - sched[0].as_nanos();
        let mean_gap = span as f64 / (sched.len() - 1) as f64;
        let expected = 0.5e6;
        assert!(
            (mean_gap - expected).abs() / expected < 0.02,
            "mean gap {mean_gap} ns vs expected {expected} ns"
        );
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_panics() {
        PoissonProcess::new(1, 0.0);
    }
}
