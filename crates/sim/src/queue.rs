//! The event queue at the heart of the simulation.
//!
//! Events are ordered by `(time, insertion sequence)`: two events scheduled
//! for the same virtual instant pop in the order they were pushed. This
//! FIFO tie-break is what makes whole-simulation replay bit-exact — a
//! plain `BinaryHeap<(SimTime, E)>` would fall back to comparing payloads
//! (or be unstable), silently coupling replay to payload representation.
//!
//! # Implementation: slab-backed calendar queue
//!
//! The original implementation was a `BinaryHeap<Entry<E>>`: correct, but
//! every push pays an O(log n) sift plus (amortised) heap growth, and the
//! engine pushes one event per event it pops. This version is a bucketed
//! calendar queue over a node slab:
//!
//! * **Slab + free list.** All entries live in one `Vec<Node<E>>`; freed
//!   nodes are chained into a free list and recycled, so a warmed-up queue
//!   never allocates on push — the buffer grows to the high-water mark of
//!   pending events and stays there.
//! * **Near future: buckets.** A window of `N_BUCKETS` buckets, each
//!   `BUCKET_NS` wide, covers the next ~262 µs of virtual time. Each
//!   bucket is a singly linked list kept sorted by `(time, seq)` with a
//!   tail pointer: the overwhelmingly common pushes — at the current
//!   instant (`push_after(ZERO)`) or monotonically forward — append at the
//!   tail in O(1); only a push that lands *behind* an existing same-bucket
//!   entry walks the (short) bucket list. A 256-bit occupancy bitmap lets
//!   `pop` skip empty buckets word-at-a-time.
//! * **Far future: pairing heap.** Events beyond the window are melded
//!   into a pairing heap over the same slab (O(1) push, amortised
//!   O(log n) pop). When the window drains, it jumps straight to the
//!   earliest overflow event and the heap prefix inside the new window is
//!   drained into the buckets — in sorted order, so every transfer is a
//!   tail append.
//!
//! * **Front slot.** One entry lives outside the slab entirely: a push
//!   that is *strictly earlier* than every pending entry parks in a
//!   dedicated `(at, seq, event)` slot instead of touching a bucket.
//!   Because every later push carries a larger sequence number, a slot
//!   entry is the unique `(time, seq)` minimum for as long as it stays
//!   there, so `pop` may return it without consulting the slab at all —
//!   the same-timestamp fusion invariant DESIGN.md documents. A later
//!   push that beats the slot demotes the old occupant into the slab
//!   with its *original* sequence number (the sorted bucket insert
//!   handles non-monotone sequences), so ordering is unaffected.
//! * **Exact next-event cache.** `next_at` tracks the earliest pending
//!   timestamp in the slab + overflow tiers and is maintained on every
//!   push and pop, so `peek_time` — which the engine's admission-batching
//!   gate calls once per decision — is O(1) instead of a bitmap rescan,
//!   and the slot-fill test above is a single compare.
//!
//! Ordering is decided *only* by `(time, seq)` comparisons in all tiers,
//! so the FIFO tie-break contract of the old heap is preserved exactly;
//! the differential test at the bottom of this file drives both
//! implementations with the same SplitMix64-generated schedules and
//! asserts identical pop streams.

use crate::time::{SimDuration, SimTime};

const NIL: u32 = u32::MAX;

/// Buckets per calendar window. 256 keeps the occupancy bitmap at four
/// words and the whole bucket directory inside two cache lines' worth of
/// scanning.
const N_BUCKETS: usize = 256;

/// log2 of the bucket width in nanoseconds: 1.024 µs buckets. Engine
/// delays cluster at zero (thread steps), ~100 µs (compute segments) and
/// ~250 µs (network legs): the first is a same-bucket tail append, the
/// other two land in-window or one window ahead.
const BUCKET_SHIFT: u32 = 10;
const BUCKET_NS: u64 = 1 << BUCKET_SHIFT;

/// Virtual-time span covered by the bucket window (~262 µs).
const WINDOW_NS: u64 = BUCKET_NS * N_BUCKETS as u64;

struct Node<E> {
    at: u64,
    seq: u64,
    /// `None` only while the node sits on the free list.
    event: Option<E>,
    /// Bucket list: next entry in `(at, seq)` order. Pairing heap: next
    /// sibling. Free list: next free node.
    next: u32,
    /// Pairing heap only: first child.
    child: u32,
}

#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

/// A deterministic discrete-event queue. `pop` advances the clock.
pub struct EventQueue<E> {
    nodes: Vec<Node<E>>,
    /// Free-list head into `nodes`.
    free: u32,
    buckets: Vec<Bucket>,
    /// Occupancy bitmap over `buckets` (bit set ⇔ bucket non-empty).
    occ: [u64; N_BUCKETS / 64],
    /// Left edge (nanos) of bucket 0.
    win_start: u64,
    /// First bucket that may be non-empty (monotone within a window).
    cursor: usize,
    in_buckets: usize,
    /// Pairing-heap root for events at or beyond `win_start + WINDOW_NS`.
    overflow: u32,
    n_overflow: usize,
    /// Reused scratch for the pairing heap's two-pass merge.
    pair_scratch: Vec<u32>,
    /// Front slot: a pushed event strictly earlier than every pending
    /// entry bypasses the slab. Invariant while occupied: `(slot_at,
    /// slot_seq)` is the unique global `(time, seq)` minimum, so `pop`
    /// takes it unconditionally and slab pops never interleave with an
    /// occupied slot.
    slot: Option<E>,
    slot_at: u64,
    slot_seq: u64,
    /// Earliest `at` pending in the slab + overflow tiers (`u64::MAX`
    /// when both are empty). Exact at all times; the slot is *not*
    /// included.
    next_at: u64,
    /// `false` routes every push through the slab (reference semantics
    /// for the fused-vs-reference differential tests).
    fastpath: bool,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            nodes: Vec::new(),
            free: NIL,
            buckets: vec![EMPTY_BUCKET; N_BUCKETS],
            occ: [0; N_BUCKETS / 64],
            win_start: 0,
            cursor: 0,
            in_buckets: 0,
            overflow: NIL,
            n_overflow: 0,
            pair_scratch: Vec::new(),
            slot: None,
            slot_at: 0,
            slot_seq: 0,
            next_at: u64::MAX,
            fastpath: true,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Enables/disables the front-slot fast path. Pop order is identical
    /// either way (differentially tested); `false` is the reference mode
    /// where every event goes through the slab.
    pub fn set_fastpath(&mut self, on: bool) {
        if !on {
            // Flush a resident slot entry into the slab so ordering state
            // is consistent before the slow-only regime begins.
            if let Some(ev) = self.slot.take() {
                let (at, seq) = (self.slot_at, self.slot_seq);
                self.insert_slab(at, seq, ev);
            }
        }
        self.fastpath = on;
    }

    /// Current virtual time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.in_buckets + self.n_overflow + usize::from(self.slot.is_some())
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(at, seq)` of node `a` orders strictly before node `b`.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (na, nb) = (&self.nodes[a as usize], &self.nodes[b as usize]);
        (na.at, na.seq) < (nb.at, nb.seq)
    }

    fn alloc(&mut self, at: u64, seq: u64, event: E) -> u32 {
        if self.free != NIL {
            let i = self.free;
            let n = &mut self.nodes[i as usize];
            self.free = n.next;
            n.at = at;
            n.seq = seq;
            n.event = Some(event);
            n.next = NIL;
            n.child = NIL;
            i
        } else {
            self.nodes.push(Node {
                at,
                seq,
                event: Some(event),
                next: NIL,
                child: NIL,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    #[inline]
    fn release(&mut self, i: u32) {
        let n = &mut self.nodes[i as usize];
        debug_assert!(n.event.is_none(), "release with live payload");
        n.next = self.free;
        self.free = i;
    }

    /// Schedules `event` at the absolute instant `at`. Panics if `at` lies
    /// in the past — an engine is never allowed to rewrite history.
    pub fn push_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        let at_ns = at.as_nanos();
        let seq = self.seq;
        self.seq += 1;
        if self.fastpath && at_ns < self.next_at {
            match self.slot {
                // Strictly earlier than everything pending: the new entry
                // is the unique (time, seq) minimum — park it in the slot.
                None => {
                    self.slot = Some(event);
                    self.slot_at = at_ns;
                    self.slot_seq = seq;
                    return;
                }
                // Beats the resident slot entry too: demote the old
                // occupant into the slab with its original sequence
                // number (sorted insert handles the non-monotone seq).
                Some(_) if at_ns < self.slot_at => {
                    let prev = self.slot.take().expect("matched Some");
                    let (pat, pseq) = (self.slot_at, self.slot_seq);
                    self.slot = Some(event);
                    self.slot_at = at_ns;
                    self.slot_seq = seq;
                    self.insert_slab(pat, pseq, prev);
                    return;
                }
                // Same instant as (or later than) the slot: the slot's
                // smaller seq keeps it first; this entry goes to the slab.
                Some(_) => {}
            }
        }
        self.insert_slab(at_ns, seq, event);
    }

    /// Inserts into the bucket window or the overflow heap, maintaining
    /// the exact `next_at` cache.
    fn insert_slab(&mut self, at: u64, seq: u64, event: E) {
        let idx = self.alloc(at, seq, event);
        debug_assert!(at >= self.win_start, "push behind the calendar window");
        if at < self.next_at {
            self.next_at = at;
        }
        if at - self.win_start < WINDOW_NS {
            self.insert_bucket(idx);
        } else {
            self.overflow = self.meld(self.overflow, idx);
            self.n_overflow += 1;
        }
    }

    /// Schedules `event` after a relative delay from the current time.
    #[inline]
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push_at(self.now + delay, event);
    }

    fn insert_bucket(&mut self, idx: u32) {
        let at = self.nodes[idx as usize].at;
        let b = ((at - self.win_start) >> BUCKET_SHIFT) as usize;
        debug_assert!(b < N_BUCKETS);
        // A push at the current instant can land in a bucket the cursor
        // already walked past (it was empty then); pull the cursor back —
        // re-scanning empties costs a few bitmap words, never correctness.
        if b < self.cursor {
            self.cursor = b;
        }
        let bucket = self.buckets[b];
        if bucket.head == NIL {
            self.buckets[b] = Bucket {
                head: idx,
                tail: idx,
            };
            self.occ[b >> 6] |= 1 << (b & 63);
        } else if self.before(bucket.tail, idx) {
            // Monotone pushes (and all same-instant ties, seq ascending)
            // append at the tail: the steady-state O(1) path.
            self.nodes[bucket.tail as usize].next = idx;
            self.buckets[b].tail = idx;
        } else if self.before(idx, bucket.head) {
            self.nodes[idx as usize].next = bucket.head;
            self.buckets[b].head = idx;
        } else {
            // Out-of-order within one ~1 µs bucket: short sorted walk.
            let mut prev = bucket.head;
            loop {
                let next = self.nodes[prev as usize].next;
                debug_assert_ne!(next, NIL, "tail comparison above bounds the walk");
                if self.before(idx, next) {
                    self.nodes[idx as usize].next = next;
                    self.nodes[prev as usize].next = idx;
                    break;
                }
                prev = next;
            }
        }
        self.in_buckets += 1;
    }

    /// First non-empty bucket at or after `from`, via the occupancy bitmap.
    #[inline]
    fn first_occupied(&self, from: usize) -> Option<usize> {
        if from >= N_BUCKETS {
            return None;
        }
        let mut w = from >> 6;
        let mut bits = self.occ[w] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w == N_BUCKETS / 64 {
                return None;
            }
            bits = self.occ[w];
        }
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Ties pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Slot first: while occupied it is the unique (time, seq) minimum
        // (filled strictly earlier than everything pending; later pushes
        // carry larger seqs), so no slab consultation is needed.
        if let Some(event) = self.slot.take() {
            debug_assert!(self.slot_at <= self.next_at);
            let at = SimTime::from_nanos(self.slot_at);
            debug_assert!(at >= self.now);
            self.now = at;
            return Some((at, event));
        }
        if self.in_buckets == 0 {
            if self.overflow == NIL {
                return None;
            }
            self.advance_window();
        }
        let b = self.first_occupied(self.cursor).expect("in_buckets > 0");
        self.cursor = b;
        let idx = self.buckets[b].head;
        let node = &mut self.nodes[idx as usize];
        let at = SimTime::from_nanos(node.at);
        let event = node.event.take().expect("bucketed node has a payload");
        let next = node.next;
        self.buckets[b].head = next;
        if next == NIL {
            self.buckets[b].tail = NIL;
            self.occ[b >> 6] &= !(1 << (b & 63));
        }
        self.in_buckets -= 1;
        self.release(idx);
        // Re-derive the next-event cache from the removal point: the new
        // head of this bucket, else the next occupied bucket, else the
        // overflow root (always later than anything in the window).
        self.next_at = if next != NIL {
            self.nodes[next as usize].at
        } else if self.in_buckets > 0 {
            let nb = self.first_occupied(b + 1).expect("in_buckets > 0");
            self.cursor = nb;
            self.nodes[self.buckets[nb].head as usize].at
        } else if self.overflow != NIL {
            self.nodes[self.overflow as usize].at
        } else {
            u64::MAX
        };
        debug_assert!(at >= self.now);
        self.now = at;
        Some((at, event))
    }

    /// Timestamp of the next event without popping it. O(1): the slot is
    /// the minimum while occupied, and `next_at` is maintained exactly.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.slot.is_some() {
            return Some(SimTime::from_nanos(self.slot_at));
        }
        if self.next_at != u64::MAX {
            return Some(SimTime::from_nanos(self.next_at));
        }
        None
    }

    /// Drops every pending event (clock is left where it is) and resets
    /// the insertion sequence to 0. The reset is safe for replay: `seq`
    /// only ever disambiguates *coexisting* same-instant entries, and an
    /// empty queue has none — restarting at 0 keeps a reused queue's pop
    /// order a pure function of the pushes made after `clear`,
    /// independent of how much traffic preceded it.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free = NIL;
        self.buckets.iter_mut().for_each(|b| *b = EMPTY_BUCKET);
        self.occ = [0; N_BUCKETS / 64];
        self.win_start = self.now.as_nanos() & !(BUCKET_NS - 1);
        self.cursor = 0;
        self.in_buckets = 0;
        self.overflow = NIL;
        self.n_overflow = 0;
        self.slot = None;
        self.next_at = u64::MAX;
        self.seq = 0;
    }

    /// Full reset for reuse across independent simulations: [`clear`]
    /// plus rewinding the clock to zero. A worker thread running shard
    /// after shard calls this between runs so the next shard starts from
    /// `t = 0` with the same slab/bucket capacity already warm — the pop
    /// stream of a reset queue is byte-for-byte the stream a freshly
    /// constructed queue would produce for the same pushes.
    ///
    /// [`clear`]: EventQueue::clear
    pub fn reset(&mut self) {
        self.now = SimTime::ZERO;
        self.clear();
        debug_assert_eq!(self.win_start, 0);
        self.cursor = 0;
    }

    /// Moves the bucket window to the earliest overflow event and drains
    /// the overflow prefix that falls inside it into the buckets. Only
    /// called with empty buckets and a non-empty overflow heap.
    fn advance_window(&mut self) {
        debug_assert_eq!(self.in_buckets, 0);
        debug_assert_ne!(self.overflow, NIL);
        let min_at = self.nodes[self.overflow as usize].at;
        self.win_start = min_at & !(BUCKET_NS - 1);
        self.cursor = 0;
        while self.overflow != NIL {
            let root = self.overflow;
            let at = self.nodes[root as usize].at;
            if at - self.win_start >= WINDOW_NS {
                break;
            }
            self.overflow = self.pop_heap_root();
            self.n_overflow -= 1;
            // Roots come off the heap in (at, seq) order, so every insert
            // below is a tail append.
            self.nodes[root as usize].next = NIL;
            self.nodes[root as usize].child = NIL;
            self.insert_bucket(root);
        }
    }

    /// Pairing-heap meld; either side may be NIL.
    fn meld(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let (root, child) = if self.before(a, b) { (a, b) } else { (b, a) };
        self.nodes[child as usize].next = self.nodes[root as usize].child;
        self.nodes[root as usize].child = child;
        root
    }

    /// Removes the heap root and returns the new root (two-pass pairing).
    fn pop_heap_root(&mut self) -> u32 {
        let root = self.overflow;
        let mut child = self.nodes[root as usize].child;
        self.nodes[root as usize].child = NIL;
        // First pass: meld adjacent sibling pairs left to right.
        let mut scratch = std::mem::take(&mut self.pair_scratch);
        scratch.clear();
        while child != NIL {
            let a = child;
            let b = self.nodes[a as usize].next;
            let after = if b == NIL {
                NIL
            } else {
                self.nodes[b as usize].next
            };
            self.nodes[a as usize].next = NIL;
            if b != NIL {
                self.nodes[b as usize].next = NIL;
            }
            scratch.push(self.meld(a, b));
            child = after;
        }
        // Second pass: fold right to left.
        let mut new_root = NIL;
        while let Some(h) = scratch.pop() {
            new_root = self.meld(new_root, h);
        }
        self.pair_scratch = scratch;
        new_root
    }
}

/// The original `BinaryHeap` implementation, kept as the ordering oracle
/// for the differential test below (and nothing else).
#[cfg(test)]
mod reference {
    use crate::time::{SimDuration, SimTime};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Entry<E> {
        at: SimTime,
        seq: u64,
        event: E,
    }

    impl<E> PartialEq for Entry<E> {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl<E> Eq for Entry<E> {}
    impl<E> PartialOrd for Entry<E> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Entry<E> {
        // Reversed: BinaryHeap is a max-heap, earliest entry on top.
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .at
                .cmp(&self.at)
                .then_with(|| other.seq.cmp(&self.seq))
        }
    }

    pub struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        seq: u64,
        now: SimTime,
    }

    impl<E> HeapQueue<E> {
        pub fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                seq: 0,
                now: SimTime::ZERO,
            }
        }

        pub fn now(&self) -> SimTime {
            self.now
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }

        pub fn push_at(&mut self, at: SimTime, event: E) {
            assert!(at >= self.now);
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, event });
        }

        pub fn push_after(&mut self, delay: SimDuration, event: E) {
            self.push_at(self.now + delay, event);
        }

        pub fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| {
                self.now = e.at;
                (e.at, e.event)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::HeapQueue;
    use super::*;
    use crate::rng::SplitMix64;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_after(ms(5), "c");
        q.push_after(ms(1), "a");
        q.push_after(ms(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(SimTime::from_nanos(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push_after(ms(2), ());
        q.push_after(ms(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + ms(2));
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + ms(9));
    }

    #[test]
    fn relative_delay_is_from_now() {
        let mut q = EventQueue::new();
        q.push_after(ms(2), "first");
        q.pop();
        q.push_after(ms(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::ZERO + ms(4));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push_after(ms(5), ());
        q.pop();
        q.push_at(SimTime::from_nanos(1), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push_after(ms(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::ZERO + ms(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_sees_overflow_events() {
        let mut q = EventQueue::new();
        q.push_after(SimDuration::from_secs(5), ());
        assert_eq!(
            q.peek_time(),
            Some(SimTime::ZERO + SimDuration::from_secs(5))
        );
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push_after(ms(1), ());
        q.push_after(ms(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_resets_insertion_sequence() {
        // After clear, same-instant FIFO must restart from a clean slate:
        // the pop order of post-clear pushes is independent of pre-clear
        // traffic. Two queues with different histories but identical
        // post-clear pushes must agree event for event.
        let mut a = EventQueue::new();
        for i in 0..57 {
            a.push_after(ms(1), i);
        }
        a.pop();
        a.clear();
        let mut b = EventQueue::new();
        b.push_after(ms(1), 0);
        b.pop();
        b.clear();
        for q in [&mut a, &mut b] {
            for i in 0..10 {
                q.push_after(ms(2), i);
            }
        }
        let pa: Vec<_> = std::iter::from_fn(|| a.pop()).collect();
        let pb: Vec<_> = std::iter::from_fn(|| b.pop()).collect();
        assert_eq!(pa, pb);
        assert_eq!(
            pa.iter().map(|&(_, e)| e).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reset_reuse_is_indistinguishable_from_fresh() {
        // Per-shard reuse contract: a worker that ran an arbitrary
        // simulation and then calls `reset()` must see exactly the pop
        // stream a brand-new queue would produce — same times (clock
        // rewound to zero), same `(time, seq)` FIFO tie-breaks. Randomized
        // differential check across a spread of pollution histories.
        let mut rng = SplitMix64::new(0x5ead_beef);
        for round in 0..32u64 {
            let mut reused: EventQueue<u64> = EventQueue::new();
            // Pollute: random pushes/pops spanning every queue tier
            // (same-instant runs, in-window hops, overflow heap), leaving
            // the clock at an arbitrary point and the slab warm.
            for i in 0..200 {
                let d = match rng.next_below(4) {
                    0 => 0,
                    1 => rng.next_below(1_000),
                    2 => 1_000 + rng.next_below(100_000),
                    _ => 1_000_000 + rng.next_below(500_000_000),
                };
                reused.push_after(SimDuration::from_nanos(d), i);
                if rng.next_below(3) == 0 {
                    reused.pop();
                }
            }
            while rng.next_below(4) != 0 && reused.pop().is_some() {}
            reused.reset();
            assert!(reused.is_empty());

            // Replay one schedule into both the reused queue and a fresh
            // one; heavy same-instant duplication exercises the seq
            // tie-break specifically.
            let mut fresh: EventQueue<u64> = EventQueue::new();
            let mut sched_rng = SplitMix64::new(0x1000 + round);
            let schedule: Vec<u64> = (0..150)
                .map(|_| match sched_rng.next_below(3) {
                    0 => sched_rng.next_below(4) * 500, // collisions
                    1 => sched_rng.next_below(200_000),
                    _ => 2_000_000 + sched_rng.next_below(300_000_000),
                })
                .collect();
            for (i, &at) in schedule.iter().enumerate() {
                reused.push_at(SimTime::from_nanos(at), i as u64);
                fresh.push_at(SimTime::from_nanos(at), i as u64);
            }
            // Drain half, then push a second wave relative to the popped
            // clock so push/pop interleaving is covered too.
            for i in 0..schedule.len() as u64 / 2 {
                assert_eq!(reused.pop(), fresh.pop());
                if i % 3 == 0 {
                    let d = SimDuration::from_nanos(sched_rng.next_below(1_000_000));
                    reused.push_after(d, 10_000 + i);
                    fresh.push_after(d, 10_000 + i);
                }
            }
            let a: Vec<_> = std::iter::from_fn(|| reused.pop()).collect();
            let b: Vec<_> = std::iter::from_fn(|| fresh.pop()).collect();
            assert_eq!(a, b, "round {round}: reset queue diverged from fresh");
            // FIFO among same-instant entries: payloads at equal times
            // must appear in push order.
            for w in a.windows(2) {
                if w[0].0 == w[1].0 {
                    assert!(w[0].1 < w[1].1, "same-instant FIFO violated");
                }
            }
        }
    }

    #[test]
    fn interleaved_push_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.push_after(ms(10), 1u32);
        q.push_after(ms(20), 2);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push_after(ms(5), 3); // at t=15, before event 2 at t=20
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 3);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 2);
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // Mix of in-window and far-overflow events, pushed out of order.
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_nanos(3_000_000_000), "far-b");
        q.push_after(SimDuration::from_nanos(100), "near");
        q.push_at(SimTime::from_nanos(2_999_999_000), "far-a");
        q.push_at(SimTime::from_nanos(3_000_000_000), "far-b2");
        q.push_at(SimTime::from_nanos(40_000_000), "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["near", "mid", "far-a", "far-b", "far-b2"]);
    }

    #[test]
    fn slab_is_recycled_across_churn() {
        // Steady-state churn must not grow the slab beyond its high-water
        // mark: capacity is bounded by the peak number of pending events.
        let mut q = EventQueue::new();
        for round in 0..1000u64 {
            q.push_after(SimDuration::from_nanos(1 + round % 7), round);
            q.push_after(SimDuration::from_micros(300), round); // overflow tier
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        assert!(
            q.nodes.len() <= 4,
            "slab grew to {} despite churn",
            q.nodes.len()
        );
    }

    #[test]
    fn front_slot_demotion_preserves_order() {
        // 100 parks in the slot; 50 demotes it; 70 lands in the slab
        // (later than the new slot entry, earlier than the demoted one).
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_nanos(100), "c");
        q.push_at(SimTime::from_nanos(50), "a");
        q.push_at(SimTime::from_nanos(70), "b");
        assert_eq!(q.len(), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn front_slot_same_instant_tie_is_fifo() {
        // First push at t=7 parks in the slot; the second (same instant,
        // larger seq) must go to the slab and pop second.
        let mut q = EventQueue::new();
        q.push_at(SimTime::from_nanos(7), 0);
        q.push_at(SimTime::from_nanos(7), 1);
        q.push_at(SimTime::from_nanos(7), 2);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn front_slot_peek_matches_pop() {
        let mut rng = SplitMix64::new(0xbead);
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..500 {
            let d = SimDuration::from_nanos(rng.next_below(400_000));
            q.push_after(d, i);
            if rng.next_below(3) != 0 {
                let peeked = q.peek_time();
                let popped = q.pop();
                assert_eq!(peeked, popped.map(|(t, _)| t));
            }
        }
        while let Some((t, _)) = {
            let peeked = q.peek_time();
            let p = q.pop();
            assert_eq!(peeked, p.as_ref().map(|&(t, _)| t));
            p
        } {
            let _ = t;
        }
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn fastpath_off_matches_fastpath_on() {
        // The reference mode (`set_fastpath(false)`) must produce the
        // byte-identical pop stream, including a mid-run flip with a
        // resident slot entry.
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xfa57 + seed);
            let mut fast: EventQueue<u64> = EventQueue::new();
            let mut slow: EventQueue<u64> = EventQueue::new();
            slow.set_fastpath(false);
            for i in 0..400 {
                let d = SimDuration::from_nanos(match rng.next_below(4) {
                    0 => 0,
                    1 => rng.next_below(BUCKET_NS),
                    2 => rng.next_below(WINDOW_NS),
                    _ => rng.next_below(50_000_000),
                });
                fast.push_after(d, i);
                slow.push_after(d, i);
                if rng.next_below(2) == 0 {
                    assert_eq!(fast.pop(), slow.pop(), "seed {seed}");
                }
                if i == 200 {
                    fast.set_fastpath(false);
                }
                assert_eq!(fast.len(), slow.len());
            }
            loop {
                let a = fast.pop();
                assert_eq!(a, slow.pop(), "seed {seed}");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// One op of the differential schedule.
    fn differential_run(seed: u64, ops: usize) {
        let mut rng = SplitMix64::new(seed);
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut payload = 0u64;
        for _ in 0..ops {
            let r = rng.next_u64() % 100;
            if r < 60 {
                // Push with a delay profile spanning all tiers: heavy
                // same-instant ties, sub-bucket, in-window, overflow.
                let delay = match rng.next_u64() % 8 {
                    0 | 1 | 2 => 0,                                    // same instant
                    3 => rng.next_u64() % BUCKET_NS,                   // same bucket
                    4 => rng.next_u64() % WINDOW_NS,                   // in window
                    5 => WINDOW_NS + rng.next_u64() % (4 * WINDOW_NS), // near overflow
                    6 => rng.next_u64() % 50_000_000,                  // ~50 ms
                    _ => rng.next_u64() % 3_600_000_000_000,           // ~1 h horizon
                };
                let d = SimDuration::from_nanos(delay);
                cal.push_after(d, payload);
                heap.push_after(d, payload);
                payload += 1;
            } else {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop stream diverged (seed {seed})");
            }
            assert_eq!(cal.len(), heap.len(), "length diverged (seed {seed})");
            assert_eq!(cal.now(), heap.now(), "clock diverged (seed {seed})");
        }
        // Drain both completely: the tails must agree too.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b, "drain diverged (seed {seed})");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn differential_against_reference_heap() {
        for seed in 0..20 {
            differential_run(0xD1F_F000 + seed, 2_000);
        }
    }

    #[test]
    fn differential_heavy_same_instant_ties() {
        // Bursts of same-instant pushes interleaved with partial drains —
        // the pattern the engine produces with zero-delay Step events.
        let mut rng = SplitMix64::new(99);
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut payload = 0u64;
        for _ in 0..200 {
            let burst = 1 + rng.next_u64() % 40;
            let gap = SimDuration::from_nanos(rng.next_u64() % 2_000_000);
            for _ in 0..burst {
                cal.push_after(gap, payload);
                heap.push_after(gap, payload);
                payload += 1;
            }
            let drains = rng.next_u64() % (burst + 2);
            for _ in 0..drains {
                assert_eq!(cal.pop(), heap.pop());
            }
        }
        loop {
            let a = cal.pop();
            assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
    }
}
