//! The event queue at the heart of the simulation.
//!
//! Events are ordered by `(time, insertion sequence)`: two events scheduled
//! for the same virtual instant pop in the order they were pushed. This
//! FIFO tie-break is what makes whole-simulation replay bit-exact — a
//! plain `BinaryHeap<(SimTime, E)>` would fall back to comparing payloads
//! (or be unstable), silently coupling replay to payload representation.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest entry on top.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue. `pop` advances the clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current virtual time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at the absolute instant `at`. Panics if `at` lies
    /// in the past — an engine is never allowed to rewrite history.
    pub fn push_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduling into the past ({at:?} < {:?})", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a relative delay from the current time.
    #[inline]
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push_at(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Ties pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.at >= self.now);
            self.now = e.at;
            (e.at, e.event)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drops every pending event (clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push_after(ms(5), "c");
        q.push_after(ms(1), "a");
        q.push_after(ms(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push_at(SimTime::from_nanos(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push_after(ms(2), ());
        q.push_after(ms(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + ms(2));
        q.pop();
        assert_eq!(q.now(), SimTime::ZERO + ms(9));
    }

    #[test]
    fn relative_delay_is_from_now() {
        let mut q = EventQueue::new();
        q.push_after(ms(2), "first");
        q.pop();
        q.push_after(ms(2), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::ZERO + ms(4));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push_after(ms(5), ());
        q.pop();
        q.push_at(SimTime::from_nanos(1), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push_after(ms(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::ZERO + ms(3)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push_after(ms(1), ());
        q.push_after(ms(2), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.push_after(ms(10), 1u32);
        q.push_after(ms(20), 2);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        q.push_after(ms(5), 3); // at t=15, before event 2 at t=20
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 3);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 2);
    }
}
