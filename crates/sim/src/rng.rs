//! Deterministic pseudo-random numbers.
//!
//! The determinism of the whole testbed must not hinge on an external
//! crate's version-dependent stream, so the kernel carries its own
//! SplitMix64 implementation (Steele, Lea & Flood, OOPSLA'14 — the same
//! generator `java.util.SplittableRandom` uses, a fitting nod to the
//! paper's Java setting). It is fast, passes BigCrush when used as a
//! 64-bit generator, and supports cheap stream splitting so independent
//! components (clients, network jitter, workload shape) draw from
//! uncorrelated streams derived from one experiment seed.

/// SplitMix64 PRNG. `Clone` yields an identical continuation of the stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl SplitMix64 {
    /// Creates a generator from an explicit seed. Equal seeds give equal
    /// streams on every platform.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child stream. Mixing in a label keeps child
    /// streams distinct even when split repeatedly from the same state.
    #[inline]
    pub fn split(&mut self, label: u64) -> SplitMix64 {
        let s = self.next_u64();
        SplitMix64::new(s ^ mix(label.wrapping_add(GAMMA)))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's multiply-shift with
    /// rejection to avoid modulo bias. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard against ln(0): next_f64 is in [0,1), so 1-u is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }
}

/// The SplitMix64 finalizer (variant 13 of Stafford's mixers).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value() {
        // Reference value for seed 0 from the published SplitMix64 C code.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut root1 = SplitMix64::new(7);
        let mut root2 = SplitMix64::new(7);
        let mut c1 = root1.split(3);
        let mut c2 = root2.split(3);
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut d = root1.split(4);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(11);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} outside tolerance");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(15);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.next_range(5, 8);
            assert!((5..=8).contains(&x));
            seen_lo |= x == 5;
            seen_hi |= x == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SplitMix64::new(17);
        let hits = (0..100_000).filter(|_| r.next_bool(0.2)).count();
        assert!((18_000..22_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SplitMix64::new(19);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(12.0)).sum();
        let mean = sum / n as f64;
        assert!((11.5..12.5).contains(&mean), "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(21);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut r = SplitMix64::new(23);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        let xs = [1, 2, 3];
        assert!(xs.contains(r.choose(&xs).unwrap()));
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }
}
