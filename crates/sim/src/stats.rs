//! Streaming statistics for the benchmark harness.
//!
//! `Summary` is a Welford accumulator (numerically stable mean/variance in
//! one pass, no sample storage); `Histogram` keeps exact samples for
//! percentile queries where the harness needs tail latency;
//! `LogHistogram` is the fixed-bucket log-scale variant the open-loop
//! latency pipeline uses — integer-only bucketing, bounded memory, and
//! percentiles that are reproducible byte-for-byte across reruns and
//! aggregation orders (bucket counts commute where raw-sample streams
//! would have to be re-sorted).

use crate::time::SimDuration;

/// One-pass mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Convenience for recording a duration in milliseconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_millis_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator). NaN with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-sample histogram with percentile queries. Intended for experiment
/// result sets (≤ a few million samples), not unbounded telemetry.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Histogram {
            samples: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sorted = false;
    }

    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_millis_f64());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Percentile by nearest-rank on the sorted samples; `p` in `[0, 100]`.
    /// NaN on an empty histogram.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Folds another histogram's samples into this one. Percentiles sort
    /// lazily, so merge order never affects any query result — the merge
    /// is commutative up to the (sorted) sample multiset.
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples.is_empty() {
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// Sub-buckets per power-of-two octave (2^5). Values below `N_SUB` get
/// one exact bucket each; larger values are quantised to a relative
/// resolution of `1/N_SUB` ≈ 3.1 %.
const N_SUB: u64 = 32;
const N_SUB_BITS: u32 = 5;
/// Octaves above the exact range: value bit-widths 6..=64.
const N_BUCKETS: usize = (N_SUB + (64 - N_SUB_BITS as u64) * N_SUB) as usize;

/// Fixed-bucket log-scale histogram over `u64` nanosecond values.
///
/// The bucket layout is HdrHistogram-like but integer-only: values
/// `0..32` get exact buckets; every power-of-two octave above that is
/// split into 32 linear sub-buckets, so the quantisation error is at
/// most one part in 32 (~3.1 %) at any magnitude up to `u64::MAX`.
/// Bucketing uses only bit arithmetic — no floats — so a recorded
/// value lands in the same bucket on every platform, and merging
/// histograms is element-wise count addition (commutative, which is
/// what lets parallel sweeps produce byte-identical percentiles).
///
/// Percentile queries ([`LogHistogram::percentile_ns`]) use the
/// nearest-rank rule on cumulative bucket counts and report the
/// *upper edge* of the containing bucket: a deterministic, slightly
/// conservative (≤ 3.2 % high) tail estimate. Exact `min`/`max`/mean
/// are tracked on the side.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Box<[u64; N_BUCKETS]>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: Box::new([0; N_BUCKETS]),
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Bucket index for a value (pure bit arithmetic).
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < N_SUB {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros(); // ≥ N_SUB_BITS
            let shift = msb - N_SUB_BITS;
            let sub = (v >> shift) - N_SUB; // 0..N_SUB
            (N_SUB + (msb - N_SUB_BITS) as u64 * N_SUB + sub) as usize
        }
    }

    /// Largest value mapping to bucket `idx` (the reported percentile
    /// representative).
    #[inline]
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < N_SUB {
            idx
        } else {
            let octave = (idx - N_SUB) / N_SUB;
            let sub = (idx - N_SUB) % N_SUB;
            let shift = octave as u32;
            // Lower edge plus the bucket's width minus one.
            ((N_SUB + sub) << shift) + ((1u64 << shift) - 1)
        }
    }

    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact mean in nanoseconds; NaN when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Exact minimum recorded value; `None` when empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_ns)
    }

    /// Exact maximum recorded value; `None` when empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_ns)
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the
    /// upper edge of the bucket holding the ranked sample, clamped to
    /// the exact observed `[min, max]` range. Returns `None` when empty.
    pub fn percentile_ns(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // ceil(p/100 · total), at least rank 1.
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i).clamp(self.min_ns, self.max_ns));
            }
        }
        Some(self.max_ns)
    }

    pub fn p50_ns(&self) -> Option<u64> {
        self.percentile_ns(50.0)
    }

    pub fn p95_ns(&self) -> Option<u64> {
        self.percentile_ns(95.0)
    }

    pub fn p99_ns(&self) -> Option<u64> {
        self.percentile_ns(99.0)
    }

    /// Element-wise merge: equivalent to having recorded both streams
    /// into one histogram, in any order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert!(s.variance().is_nan());
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.add(1.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.add(i as f64);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100.0);
        let med = h.median();
        assert!((49.0..=52.0).contains(&med));
        let p99 = h.percentile(99.0);
        assert!((98.0..=100.0).contains(&p99));
    }

    #[test]
    fn histogram_empty_is_nan() {
        let mut h = Histogram::new();
        assert!(h.percentile(50.0).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    fn histogram_unsorted_inserts() {
        let mut h = Histogram::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.add(x);
        }
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.mean(), 3.0);
        // Adding after a percentile query re-sorts correctly.
        h.add(0.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn log_histogram_buckets_are_monotonic_and_cover_u64() {
        let mut prev = 0usize;
        for bits in 0..64 {
            for v in [
                1u64 << bits,
                (1u64 << bits) + 1,
                (1u64 << bits).wrapping_sub(1),
            ] {
                if v == 0 {
                    continue;
                }
                let b = LogHistogram::bucket_of(v);
                assert!(b < N_BUCKETS, "bucket {b} out of range for {v}");
                let _ = prev;
                prev = b;
            }
        }
        // bucket_of is monotone non-decreasing and upper bounds contain
        // their values.
        let mut last = 0;
        for v in (0..4096u64).chain((3..54).map(|s| 1000u64 << s)) {
            let b = LogHistogram::bucket_of(v);
            assert!(b >= last, "bucket order broken at {v}");
            last = b;
            assert!(
                LogHistogram::bucket_upper(b) >= v,
                "upper edge below value {v}"
            );
        }
        assert_eq!(LogHistogram::bucket_of(u64::MAX), N_BUCKETS - 1);
        assert_eq!(LogHistogram::bucket_upper(N_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn log_histogram_small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.percentile_ns(0.0), Some(0));
        assert_eq!(h.percentile_ns(100.0), Some(31));
        // Rank 16 of 32 → value 15 (exact buckets below 32).
        assert_eq!(h.p50_ns(), Some(15));
    }

    #[test]
    fn log_histogram_percentiles_within_resolution() {
        let mut h = LogHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1_000); // 1µs … 10ms
        }
        let p50 = h.p50_ns().unwrap() as f64;
        let p95 = h.p95_ns().unwrap() as f64;
        let p99 = h.p99_ns().unwrap() as f64;
        // Upper-edge reporting: within +3.2 % of the exact rank value.
        assert!((5_000_000.0..=5_160_000.0).contains(&p50), "p50={p50}");
        assert!((9_500_000.0..=9_804_000.0).contains(&p95), "p95={p95}");
        assert!((9_900_000.0..=10_216_800.0).contains(&p99), "p99={p99}");
        assert_eq!(h.max_ns(), Some(10_000_000));
        assert_eq!(h.min_ns(), Some(1_000));
        assert!((h.mean_ns() - 5_000_500.0).abs() < 1.0);
    }

    #[test]
    fn log_histogram_merge_matches_single_stream() {
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..5_000u64 {
            let v = (i * 2_654_435_761) % 50_000_000;
            whole.record(v);
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            assert_eq!(a.percentile_ns(p), whole.percentile_ns(p), "p{p}");
        }
        assert_eq!(a.min_ns(), whole.min_ns());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert_eq!(a.mean_ns(), whole.mean_ns());
    }

    #[test]
    fn log_histogram_empty() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile_ns(50.0), None);
        assert!(h.mean_ns().is_nan());
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
    }

    #[test]
    fn log_histogram_percentiles_clamp_to_observed_range() {
        let mut h = LogHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.p50_ns(), Some(1_000_003));
        assert_eq!(h.p99_ns(), Some(1_000_003));
        h.record_duration(SimDuration::from_millis(2));
        assert_eq!(h.percentile_ns(100.0), Some(2_000_000));
    }

    #[test]
    fn duration_helpers() {
        let mut s = Summary::new();
        s.add_duration(SimDuration::from_millis(4));
        assert_eq!(s.mean(), 4.0);
        let mut h = Histogram::new();
        h.add_duration(SimDuration::from_micros(2500));
        assert_eq!(h.mean(), 2.5);
    }
}
