//! Streaming statistics for the benchmark harness.
//!
//! `Summary` is a Welford accumulator (numerically stable mean/variance in
//! one pass, no sample storage); `Histogram` keeps exact samples for
//! percentile queries where the harness needs tail latency.

use crate::time::SimDuration;

/// One-pass mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Convenience for recording a duration in milliseconds.
    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_millis_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator). NaN with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact-sample histogram with percentile queries. Intended for experiment
/// result sets (≤ a few million samples), not unbounded telemetry.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { samples: Vec::new(), sorted: true }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Histogram { samples: Vec::with_capacity(cap), sorted: true }
    }

    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.samples.push(x);
        self.sorted = false;
    }

    pub fn add_duration(&mut self, d: SimDuration) {
        self.add(d.as_millis_f64());
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
    }

    /// Percentile by nearest-rank on the sorted samples; `p` in `[0, 100]`.
    /// NaN on an empty histogram.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.ensure_sorted();
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank]
    }

    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            f64::NAN
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_empty_is_nan() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert!(s.variance().is_nan());
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn summary_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &data {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &data[..37] {
            a.add(x);
        }
        for &x in &data[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.add(1.0);
        let b = Summary::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = Summary::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn histogram_percentiles() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.add(i as f64);
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100.0);
        let med = h.median();
        assert!((49.0..=52.0).contains(&med));
        let p99 = h.percentile(99.0);
        assert!((98.0..=100.0).contains(&p99));
    }

    #[test]
    fn histogram_empty_is_nan() {
        let mut h = Histogram::new();
        assert!(h.percentile(50.0).is_nan());
        assert!(h.mean().is_nan());
    }

    #[test]
    fn histogram_unsorted_inserts() {
        let mut h = Histogram::new();
        for x in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.add(x);
        }
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.mean(), 3.0);
        // Adding after a percentile query re-sorts correctly.
        h.add(0.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn duration_helpers() {
        let mut s = Summary::new();
        s.add_duration(SimDuration::from_millis(4));
        assert_eq!(s.mean(), 4.0);
        let mut h = Histogram::new();
        h.add_duration(SimDuration::from_micros(2500));
        assert_eq!(h.mean(), 2.5);
    }
}
