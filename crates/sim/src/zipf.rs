//! Deterministic Zipf-distributed key sampling.
//!
//! Real replicated-object workloads rarely touch keys uniformly: a small
//! set of hot objects absorbs most of the traffic (web caches, lock
//! managers, name services). The classic model is the Zipf distribution,
//! where the k-th most popular of `n` items is drawn with probability
//! proportional to `1/k^s`. The skew exponent `s` interpolates from
//! uniform (`s = 0`) through the canonical web-trace value (`s ≈ 0.99`)
//! to near-single-hot-key regimes (`s ≥ 2`).
//!
//! [`ZipfSampler`] precomputes the cumulative distribution once and draws
//! by binary search over it, so sampling is `O(log n)` with no float
//! accumulation during the run — the CDF is a pure function of `(n, s)`
//! and the draw consumes exactly one [`SplitMix64`] value, keeping every
//! schedule byte-reproducible.

use crate::rng::SplitMix64;

/// Samples ranks in `[0, n)` with probability ∝ `1/(rank+1)^s`.
///
/// Rank 0 is the hottest key. Callers that map ranks onto application keys
/// should apply their own (deterministic) permutation if they want the hot
/// keys scattered.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// cdf[k] = P(rank ≤ k); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with skew exponent `s`.
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite. `s = 0`
    /// degenerates to the uniform distribution (but note that a uniform
    /// draw via [`SplitMix64::next_below`] consumes the RNG differently —
    /// callers preserving historical schedules should keep using that path
    /// for the uniform case).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler over zero items");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be finite and >= 0, got {s}"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of items the sampler draws over.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly one item (it then always draws 0).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank, consuming exactly one value from `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c <= u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let z = ZipfSampler::new(64, 0.99);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn ranks_in_bounds() {
        let z = ZipfSampler::new(10, 1.5);
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn hot_key_dominates_with_high_skew() {
        let z = ZipfSampler::new(100, 2.0);
        let mut rng = SplitMix64::new(3);
        let hits = (0..50_000).filter(|_| z.sample(&mut rng) == 0).count();
        // P(rank 0) at s=2, n=100 is 1/ζ(2,n≈100) ≈ 0.62.
        assert!(hits > 25_000, "rank 0 hit {hits}/50000 — not dominant");
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let z = ZipfSampler::new(8, 0.0);
        let mut rng = SplitMix64::new(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} outside tolerance");
        }
    }

    #[test]
    fn monotone_popularity() {
        let z = ZipfSampler::new(16, 0.99);
        let mut rng = SplitMix64::new(11);
        let mut counts = [0u32; 16];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Popularity must be (statistically) non-increasing in rank; allow
        // small inversions in the cold tail.
        for w in counts.windows(2).take(8) {
            assert!(
                w[0] as f64 > w[1] as f64 * 0.9,
                "ranks out of order: {counts:?}"
            );
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = ZipfSampler::new(1, 0.99);
        let mut rng = SplitMix64::new(13);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "ZipfSampler over zero items")]
    fn zero_items_panics() {
        ZipfSampler::new(0, 1.0);
    }
}
