//! Virtual time. `SimTime` is an absolute instant, `SimDuration` a span;
//! both are nanosecond-resolution `u64` newtypes so arithmetic is exact and
//! ordering is total — a prerequisite for deterministic replay.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant of virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    /// Span since an earlier instant. Panics in debug builds if `earlier`
    /// is actually later — that always indicates an engine bug.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "time ran backwards");
        SimDuration(self.0 - earlier.0)
    }
    #[inline]
    pub fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Duration from a floating-point millisecond count (rounded to ns).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        debug_assert!(ms >= 0.0 && ms.is_finite());
        SimDuration((ms * 1_000_000.0).round() as u64)
    }
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
    }

    #[test]
    fn time_difference() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1_700);
        assert_eq!((b - a).as_nanos(), 1_200);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis_f64(), 30.0);
        assert_eq!((d / 4).as_millis_f64(), 2.5);
        assert_eq!((d - SimDuration::from_millis(4)).as_millis_f64(), 6.0);
        assert_eq!(
            d.saturating_sub(SimDuration::from_millis(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::ZERO,
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_nanos(3),
                SimTime::from_nanos(5)
            ]
        );
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }
}
