//! # dmt-sim — deterministic discrete-event simulation kernel
//!
//! The substrate on which the replicated-object testbed runs. The paper's
//! evaluation was performed on a physical LAN with three replica hosts; we
//! substitute a virtual-time simulation so that every experiment is exactly
//! reproducible (see DESIGN.md §1). The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution,
//! * [`EventQueue`] — a priority queue over virtual time with deterministic
//!   FIFO tie-breaking for simultaneous events,
//! * [`SplitMix64`] — a small, fully deterministic PRNG (implemented in-tree
//!   so the determinism guarantees are auditable),
//! * [`stats`] — streaming statistics used by the benchmark harness.
//!
//! Nothing in this crate knows about schedulers or replicas; it is a plain
//! HPC-style simulation kernel.

pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{Histogram, Summary};
pub use time::{SimDuration, SimTime};
