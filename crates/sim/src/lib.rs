//! # dmt-sim — deterministic discrete-event simulation kernel
//!
//! The substrate on which the replicated-object testbed runs. The paper's
//! evaluation was performed on a physical LAN with three replica hosts; we
//! substitute a virtual-time simulation so that every experiment is exactly
//! reproducible (see DESIGN.md §1). The kernel provides:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual time with nanosecond resolution,
//! * [`EventQueue`] — a priority queue over virtual time with deterministic
//!   FIFO tie-breaking for simultaneous events,
//! * [`SplitMix64`] — a small, fully deterministic PRNG (implemented in-tree
//!   so the determinism guarantees are auditable),
//! * [`arrival`] — deterministic open-loop arrival processes:
//!   [`PoissonProcess`] draws exponential inter-arrival gaps from a seeded
//!   stream, in integer virtual nanoseconds, so an offered-load schedule
//!   is a pure function of `(seed, rate)` — no wall clock anywhere; the
//!   [`OnOffProcess`] MMPP-2 variant adds bursty on/off traffic with the
//!   same determinism guarantee,
//! * [`zipf`] — [`ZipfSampler`], deterministic skewed key popularity
//!   (`1/k^s`) with a precomputed CDF and one-RNG-draw sampling,
//! * [`stats`] — streaming statistics used by the benchmark harness:
//!   exact-sample [`Histogram`], Welford [`Summary`], and the
//!   fixed-bucket log-scale [`LogHistogram`] (32 linear sub-buckets per
//!   power-of-two octave, ≤ 3.2 % quantisation, integer-only bucketing)
//!   whose p50/p95/p99 extraction is reproducible byte-for-byte across
//!   reruns and merge orders.
//!
//! Nothing in this crate knows about schedulers or replicas; it is a plain
//! HPC-style simulation kernel.

pub mod arrival;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;
pub mod zipf;

pub use arrival::{onoff_schedule, poisson_schedule, OnOffProcess, PoissonProcess};
pub use queue::EventQueue;
pub use rng::SplitMix64;
pub use stats::{Histogram, LogHistogram, Summary};
pub use time::{SimDuration, SimTime};
pub use zipf::ZipfSampler;
