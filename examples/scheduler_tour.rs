//! A tour of all eight schedulers on the paper's Figure-1 workload:
//! response time, network traffic, dummy overhead, and the determinism
//! verdict side by side.
//!
//! ```text
//! cargo run --release --example scheduler_tour
//! ```

use dmt::core::SchedulerKind;
use dmt::replica::{check_determinism, CheckOutcome};
use dmt::workload::fig1;

fn main() {
    let params = fig1::Fig1Params {
        n_clients: 6,
        requests_per_client: 3,
        n_mutexes: 20,
        ..Default::default()
    };
    let pair = fig1::scenario(&params);

    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>8} {:>8}  verdict",
        "sched", "mean (ms)", "p95 (ms)", "net legs", "dummies", "ctrl"
    );
    for kind in SchedulerKind::ALL {
        let (mut res, outcome) = check_determinism(pair.for_kind(kind), kind, 7, 0.25);
        let verdict = match outcome {
            CheckOutcome::Converged => "converged".to_string(),
            CheckOutcome::Diverged { pair, .. } => format!("DIVERGED {pair:?}"),
            CheckOutcome::Stalled => "stalled".to_string(),
        };
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>9} {:>8} {:>8}  {}",
            kind.to_string(),
            res.response_times.mean(),
            res.response_times.percentile(95.0),
            res.net_legs(),
            res.dummy_requests,
            res.ctrl_messages,
            verdict,
        );
    }
    println!(
        "\nNote: FREE is the negative control — it is *expected* to diverge.\n\
         SEQ and SAT (single active thread) must match the global grant\n\
         order; every concurrent algorithm is compared per mutex — the\n\
         guarantee the original papers state, and all that properly\n\
         synchronised state can observe."
    );
}
