//! The paper's Figure 4, live: build the `foo(Object o)` example, run
//! the static analysis, and print the original next to the transformed
//! source with the injected `scheduler.lockInfo` / `scheduler.ignore`
//! calls.
//!
//! ```text
//! cargo run --example analysis_transform
//! ```

use dmt::analysis::{analyze, build_lock_table, pretty, transform};
use dmt::lang::ast::{CondExpr, MutexExpr};
use dmt::lang::ObjectBuilder;

fn main() {
    // private Object myo;
    // public void foo(Object o) {
    //     if (myo.equals(o)) synchronized(o) { … }
    //     else synchronized(myo) { … }
    // }
    let mut ob = ObjectBuilder::new("Fig4");
    let myo = ob.field();
    let mut m = ob.method("foo", 1);
    m.if_else(
        CondExpr::ParamEqField(0, myo),
        |b| {
            b.sync(MutexExpr::Arg(0), |b| {
                b.compute_ms(1);
            });
        },
        |b| {
            b.sync(MutexExpr::Field(myo), |b| {
                b.compute_ms(1);
            });
        },
    );
    m.done();
    let obj = ob.build();

    println!("=== original ===");
    println!("{}", pretty::print_object(&obj));

    let transformed = transform(&obj);
    println!("=== after code analysis and injection (paper Figure 4) ===");
    println!("{}", pretty::print_object(&transformed));

    println!("=== analysis report ===");
    println!("{}", analyze(&obj));

    let table = build_lock_table(&obj);
    println!("lock table rows: {}", table.n_methods());
    let entries = table.entries(dmt::lang::MethodIdx::new(0)).unwrap();
    println!(
        "start method `foo`: {} syncids {:?}",
        entries.len(),
        entries.iter().map(|e| e.sync_id).collect::<Vec<_>>()
    );
}
