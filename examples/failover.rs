//! Replica failure and LSA leader takeover (the paper's §3.5 concern:
//! "In case of a failure this might lead to a high take-over time that
//! does not exist for MAT").
//!
//! Kills one replica mid-run under LSA (the leader) and under MAT (a
//! peer) and compares service continuity.
//!
//! ```text
//! cargo run --release --example failover
//! ```

use dmt::core::SchedulerKind;
use dmt::replica::{Engine, EngineConfig};
use dmt::sim::SimDuration;
use dmt::workload::fig1;

fn main() {
    let params = fig1::Fig1Params {
        n_clients: 4,
        requests_per_client: 6,
        ..Default::default()
    };
    let pair = fig1::scenario(&params);

    for (label, kind, victim) in [
        ("LSA, leader killed", SchedulerKind::Lsa, 0usize),
        ("LSA, follower killed", SchedulerKind::Lsa, 2),
        ("MAT, peer killed", SchedulerKind::Mat, 0),
    ] {
        let cfg = EngineConfig::new(kind)
            .with_seed(9)
            .with_kill(victim, SimDuration::from_millis(30));
        let res = Engine::new(pair.for_kind(kind), cfg).run();
        println!("== {label}");
        println!("   completed        : {}", res.completed_requests);
        println!("   mean response    : {:.2} ms", res.response_times.mean());
        println!(
            "   takeover gap     : {}",
            res.takeover_gap
                .map(|g| format!("{g}"))
                .unwrap_or_else(|| "-".into())
        );
        println!("   stalled          : {}", res.deadlocked);
        // Survivors must agree.
        let survivors: Vec<_> = (0..3).filter(|&i| i != victim).collect();
        assert_eq!(
            res.traces[survivors[0]].state_hash, res.traces[survivors[1]].state_hash,
            "{label}: survivors diverged"
        );
        println!("   survivors agree  : ✓");
    }
}
