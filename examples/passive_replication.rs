//! Passive replication via deterministic replay (paper §1): a primary
//! records its request log and monitor-grant order; after a "crash" the
//! backup re-executes the log and reaches the primary's exact state —
//! for every scheduler, including the nondeterministic FREE baseline
//! (once recorded, an execution is a deterministic artefact).
//!
//! ```text
//! cargo run --release --example passive_replication
//! ```

use dmt::core::SchedulerKind;
use dmt::lang::compile::compile;
use dmt::replica::{record_primary, replay_on_backup};
use dmt::workload::bank;

fn main() {
    let params = bank::BankParams::default();
    let obj = bank::build_object(&params);
    let program = compile(&obj);
    let requests: Vec<_> = bank::client_scripts(&params)
        .into_iter()
        .flat_map(|c| c.requests)
        .collect();
    let dummy = program.method_by_name("noop");

    println!("{:<8} {:>9} {:>8}  replay", "sched", "requests", "grants");
    for kind in SchedulerKind::ALL {
        let log = record_primary(program.clone(), kind, requests.clone(), dummy);
        let replayed = replay_on_backup(program.clone(), &log);
        let ok = replayed == log.state_hash;
        println!(
            "{:<8} {:>9} {:>8}  {}",
            kind.to_string(),
            log.requests.len(),
            log.grants.len(),
            if ok {
                "state reproduced ✓"
            } else {
                "MISMATCH ✗"
            }
        );
        assert!(ok, "{kind} replay failed");
    }
}
