//! Quickstart: define a replicated object, run it on a 3-replica cluster
//! under a deterministic scheduler, and verify the replicas agree.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dmt::core::SchedulerKind;
use dmt::lang::ast::{IntExpr, MutexExpr};
use dmt::lang::{compile, DurExpr, ObjectBuilder, RequestArgs, Value};
use dmt::replica::{ClientScript, Engine, EngineConfig, Scenario};

fn main() {
    // 1. Define the replicated object: a counter whose `add` method does
    //    a little computation and then updates state under `this`.
    let mut ob = ObjectBuilder::new("Counter");
    let total = ob.cell();
    let mut m = ob.method("add", 1);
    m.compute(DurExpr::millis(1));
    m.sync(MutexExpr::This, |b| {
        b.update(total, IntExpr::Arg(0));
    });
    let add = m.done();
    let program = compile::compile(&ob.build());

    // 2. Script the clients: three closed-loop clients, four requests
    //    each, with client-chosen arguments (all randomness lives at the
    //    client, as the paper requires).
    let clients = (0..3)
        .map(|c| {
            ClientScript::repeated(
                add,
                (1..=4)
                    .map(|i| RequestArgs::new(vec![Value::Int(c * 100 + i)]))
                    .collect(),
            )
        })
        .collect();
    let scenario = Scenario::new(program, clients);

    // 3. Run the cluster under MAT (multiple active threads, one
    //    lock-granting primary) with per-replica CPU jitter — replicas
    //    run at visibly different speeds, yet stay consistent.
    let cfg = EngineConfig::new(SchedulerKind::Mat)
        .with_seed(42)
        .with_cpu_jitter(0.2);
    let res = Engine::new(scenario, cfg).run();

    println!("completed requests : {}", res.completed_requests);
    println!("mean response time : {:.3} ms", res.response_times.mean());
    println!("virtual makespan   : {}", res.makespan);
    for (i, tr) in res.traces.iter().enumerate() {
        println!(
            "replica {i}: state hash {:016x}, {} lock grants",
            tr.state_hash,
            tr.lock_order.len()
        );
    }
    assert!(res
        .traces
        .windows(2)
        .all(|w| w[0].state_hash == w[1].state_hash));
    println!("replicas converged ✓");
}
