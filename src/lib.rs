//! # dmt — deterministic multithreading strategies for replicated objects
//!
//! A Rust reproduction of *"Revisiting Deterministic Multithreading
//! Strategies"* (Domaschka, Schmied, Reiser, Hauck — Ulm University,
//! IEEE IPDPS Workshops 2007): the surveyed deterministic schedulers
//! (SEQ, SAT, LSA, PDS, MAT), the proposed static-analysis-driven
//! extensions (last-lock MAT, predicted MAT), and everything they need
//! to run — an object-method language and interpreter, a static lock
//! analyser with code injection, total-order group communication, a
//! virtual-time replication engine with a determinism checker, and a
//! real-thread runtime.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | dmt-sim | discrete-event kernel, RNG, statistics |
//! | [`lang`] | dmt-lang | object-method AST, bytecode, interpreter |
//! | [`analysis`] | dmt-analysis | lock analysis + `lockInfo`/`ignore` injection |
//! | [`core`] | dmt-core | the schedulers and the bookkeeping module |
//! | [`obs`] | dmt-obs | trace sinks, contention profiles, metrics, exporters |
//! | [`groupcomm`] | dmt-groupcomm | total-order broadcast simulation |
//! | [`replica`] | dmt-replica | cluster engine, determinism checker, replay |
//! | [`workload`] | dmt-workload | the paper's benchmark + domain scenarios |
//! | [`rt`] | dmt-rt | deterministic scheduling of real OS threads |
//!
//! ## Quickstart
//!
//! ```
//! use dmt::core::SchedulerKind;
//! use dmt::replica::{Engine, EngineConfig};
//! use dmt::workload::fig1;
//!
//! let params = fig1::Fig1Params { n_clients: 2, requests_per_client: 1, ..Default::default() };
//! let scenario = fig1::scenario(&params);
//! let res = Engine::new(
//!     scenario.for_kind(SchedulerKind::Mat),
//!     EngineConfig::new(SchedulerKind::Mat),
//! )
//! .run();
//! assert!(!res.deadlocked);
//! assert_eq!(res.completed_requests, 2);
//! // All three replicas reached the same state.
//! assert_eq!(res.traces[0].state_hash, res.traces[1].state_hash);
//! ```

pub use dmt_analysis as analysis;
pub use dmt_core as core;
pub use dmt_groupcomm as groupcomm;
pub use dmt_lang as lang;
pub use dmt_obs as obs;
pub use dmt_replica as replica;
pub use dmt_rt as rt;
pub use dmt_sim as sim;
pub use dmt_workload as workload;
